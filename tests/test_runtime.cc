/**
 * @file
 * Runtime tests: whole networks executed on the virtual GPU in check
 * mode (device outputs vs the CPU reference), CTA sampling behaviour,
 * and per-layer stat collection.
 */

#include <gtest/gtest.h>

#include "nn/models/models.hh"
#include "nn/weights.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

namespace tango {
namespace {

using rt::RunPolicy;
using rt::Runtime;

TEST(Runtime, CifarNetFullSimMatchesReference)
{
    // The whole CifarNet inference — every CTA of every kernel — runs on
    // the simulator and must match the CPU reference.
    sim::Gpu gpu(sim::pascalGP102());
    nn::AnyModel model(nn::models::buildCifarNet());
    nn::initWeights(model);

    RunPolicy p;
    p.sim.fullSim = true;
    p.functional = true;
    p.check = true;
    p.tolerance = 2e-4f;

    Runtime rtm(gpu);
    const rt::NetRun run = rtm.run(model, p);
    EXPECT_EQ(run.checkFailures, 0u);
    EXPECT_GT(run.totalTimeSec, 0.0);
    EXPECT_GT(run.totals.sumPrefix("op."), 1000.0);
    // One LayerRun per layer with kernels (8 compute + softmax).
    EXPECT_EQ(run.layers.size(), 9u);
}

TEST(Runtime, GruEndToEndPrediction)
{
    sim::Gpu gpu(sim::pascalGP102());
    nn::AnyModel model(nn::models::buildGru());
    nn::initWeights(model);

    RunPolicy p;
    p.sim.fullSim = true;
    p.functional = true;
    p.check = true;
    p.tolerance = 1e-3f;

    const auto seq = nn::models::makeStockSequence(model.rnn().seqLen);
    float pred = 0.0f;
    Runtime rtm(gpu);
    const rt::NetRun run =
        rtm.run(model, p, {.sequence = &seq, .prediction = &pred});
    EXPECT_EQ(run.checkFailures, 0u);
    EXPECT_NEAR(pred, model.rnn().forward(seq), 1e-3f);
    // 2 cell launches + 1 readout.
    EXPECT_EQ(run.layers.size(), 3u);
}

TEST(Runtime, LstmEndToEndPrediction)
{
    sim::Gpu gpu(sim::pascalGP102());
    nn::AnyModel model(nn::models::buildLstm());
    nn::initWeights(model);

    RunPolicy p;
    p.sim.fullSim = true;
    p.functional = true;
    p.check = true;
    p.tolerance = 1e-3f;

    const auto seq = nn::models::makeStockSequence(model.rnn().seqLen);
    float pred = 0.0f;
    Runtime rtm(gpu);
    const rt::NetRun run =
        rtm.run(model, p, {.sequence = &seq, .prediction = &pred});
    EXPECT_EQ(run.checkFailures, 0u);
    EXPECT_NEAR(pred, model.rnn().forward(seq), 1e-3f);
}

TEST(Runtime, SampledRunProducesScaledStats)
{
    // AlexNet timing-only with CTA sampling: stats must be scaled to the
    // full grid (thread instruction count ~ proportional to total MACs).
    sim::Gpu gpu(sim::pascalGP102());
    RunPolicy p;   // timing-only defaults
    p.sim.maxWarpsPerCta = 6;
    const rt::NetRun run = rt::runNetworkByName(gpu, "alexnet", p);

    EXPECT_GT(run.totalTimeSec, 0.0);
    EXPECT_GT(run.peakPowerW, 0.0);
    // AlexNet inference is ~0.7 G MACs; with ~14 instructions per MAC in
    // the naive kernels, expect the right order of magnitude.
    const double instr = run.totals.sumPrefix("op.");
    EXPECT_GT(instr, 1e9);
    EXPECT_LT(instr, 1e12);
}

TEST(Runtime, ConvDominatesCifarNetTime)
{
    // Paper Observation 1 (sampled timing run).
    sim::Gpu gpu(sim::pascalGP102());
    RunPolicy p;
    p.sim.maxWarpsPerCta = 6;
    const rt::NetRun run = rt::runNetworkByName(gpu, "cifarnet", p);
    const double convT = run.figTypeTime("Conv");
    EXPECT_GT(convT / run.totalTimeSec, 0.5);
}

TEST(Runtime, FigTypeAccountingConsistent)
{
    sim::Gpu gpu(sim::pascalGP102());
    RunPolicy p;
    p.sim.maxWarpsPerCta = 6;
    const rt::NetRun run = rt::runNetworkByName(gpu, "cifarnet", p);
    double sum = 0.0;
    for (const auto &fig : run.figTypes())
        sum += run.figTypeTime(fig);
    EXPECT_NEAR(sum, run.totalTimeSec, 1e-12);
}

TEST(Runtime, DeviceFootprintTracksModelSize)
{
    sim::Gpu gpu(sim::pascalGP102());
    RunPolicy p;
    p.sim.maxWarpsPerCta = 6;
    const rt::NetRun gru = rt::runNetworkByName(gpu, "gru", p);
    const rt::NetRun cifar = rt::runNetworkByName(gpu, "cifarnet", p);
    // Paper Fig 11: RNNs < 500KB, CNNs >= 1MB.
    EXPECT_LT(gru.deviceBytes, 500ull * 1024);
    EXPECT_GT(cifar.deviceBytes, 500ull * 1024);
}

} // namespace
} // namespace tango
