/**
 * @file
 * tango-run — run networks once and print their simulated statistics:
 * the minimal single-process entry point for wall-time measurements
 * (scripts/perf_baseline.sh) and quick ad-hoc runs.
 *
 *   tango-run [options] [<policy>] <network>...
 *
 * The first positional argument may name a RunPolicy ("bench", "mem",
 * "stall", "exact"); the remaining positionals are networks.  Unlike the
 * figure benches there is no result cache and no multi-config sweep: the
 * cost you measure is the cost of simulating exactly what you asked for.
 *
 * --seq-len overrides the RNN sequence length (default
 * nn::models::kDefaultRnnSeqLen), which is how the perf baseline makes
 * the GRU/LSTM steady state long enough to time meaningfully.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "common/logging.hh"
#include "nn/models/models.hh"
#include "runtime/job.hh"
#include "sim/gpu.hh"

namespace {

using namespace tango;

struct Options
{
    tools::JobSpecArgs args;
    std::vector<std::string> nets;
};

void
usage(FILE *to)
{
    std::fprintf(to,
        "usage: tango-run [options] [<policy>] <network>...\n"
        "\n"
        "networks: %s\n"
        "policies: bench (alias: fig), mem, stall, exact (default bench)\n"
        "\n"
        "options:\n"
        "  --seq-len N      RNN sequence length (default %u; ignored for\n"
        "                   CNNs)\n"
        "  --platform P     GP102 | GK210 | TX1 (default GP102)\n"
        "  --tier T         accuracy tier: sim | replay | estimate\n"
        "                   (default $TANGO_TIER, else sim)\n"
        "  --functional     upload weights and compute real outputs\n"
        "  -h, --help       this message\n"
        "\n"
        "TANGO_NO_MEMO=1 disables steady-state launch memoization.\n",
        tools::knownNetworksLine().c_str(),
        nn::models::kDefaultRnnSeqLen);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s expects a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            std::exit(0);
        } else if (arg == "--seq-len") {
            const uint64_t n = tools::parseUint("--seq-len", value());
            if (n == 0 || n > (1u << 20))
                fatal("--seq-len must be in [1, %u]", 1u << 20);
            opt.args.seqLen = static_cast<uint32_t>(n);
        } else if (arg == "--platform") {
            opt.args.platform = value();
            tools::validatePlatform(opt.args.platform);
        } else if (arg == "--tier") {
            opt.args.tier = tools::lower(value());
        } else if (arg == "--functional") {
            opt.args.functional = true;
        } else if (!arg.empty() && arg[0] == '-') {
            usage(stderr);
            fatal("unknown option '%s'", arg.c_str());
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.empty()) {
        usage(stderr);
        fatal("no network given");
    }
    const tools::NetSelection sel = tools::parseNetArgs(positional);
    opt.args.policy = sel.policy;
    opt.nets = sel.nets;
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    sim::Gpu gpu(tools::makeJobSpec(opt.nets[0], opt.args).gpuConfig());

    for (const std::string &net : opt.nets) {
        const rt::JobSpec spec = tools::makeJobSpec(net, opt.args);
        const rt::NetRun run = rt::runJob(gpu, spec);

        uint64_t kernels = 0;
        for (const auto &l : run.layers)
            kernels += l.kernels.size();
        std::printf("%-12s policy=%s  kernels=%llu  sim_time=%.6gs  "
                    "energy=%.6gJ\n",
                    net.c_str(), opt.args.policy.c_str(),
                    static_cast<unsigned long long>(kernels),
                    run.totalTimeSec, run.totalEnergyJ);
        std::printf("  launches: replayed=%llu simulated=%llu\n",
                    static_cast<unsigned long long>(
                        run.totals.get("mem.replayed_launches")),
                    static_cast<unsigned long long>(
                        run.totals.get("mem.simulated_launches")));
    }
    return 0;
}
