#include "sim/gpu.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/logging.hh"
#include "metrics/metrics.hh"
#include "sim/cache.hh"
#include "sim/digest.hh"
#include "sim/interp.hh"
#include "sim/shard.hh"
#include "trace/trace.hh"

namespace tango::sim {

namespace {

/** Launch-level runtime metrics (one bump per kernel launch — noise
 *  next to the millions of simulated cycles each launch costs). */
struct SimMetrics
{
    metrics::Counter &simulated, &replayed, &memoMismatches;
    metrics::Counter &shardedLaunches, &shardFanout;

    static SimMetrics &get()
    {
        static constexpr const char *kLaunch = "tango_sim_launches_total";
        static constexpr const char *kLaunchHelp =
            "Kernel launches by how they ran (full simulation vs "
            "memoized steady-state replay)";
        static SimMetrics m{
            metrics::counter(kLaunch, kLaunchHelp,
                             {{"mode", "simulated"}}),
            metrics::counter(kLaunch, kLaunchHelp, {{"mode", "replayed"}}),
            metrics::counter("tango_sim_memo_mismatches_total",
                             "Armed memo replays whose stream digest "
                             "diverged (restored and re-simulated)"),
            metrics::counter("tango_sim_sharded_launches_total",
                             "Launches split across >1 CTA shard"),
            metrics::counter("tango_sim_shard_fanout_total",
                             "Shard simulation threads forked across "
                             "all sharded launches"),
        };
        return m;
    }
};

/**
 * Reject configurations that would divide by zero, build a cache smaller
 * than one set, or otherwise hit internal asserts deep inside a launch.
 * Reported with fatal() so callers (config sweeps, CLI flags) get a clean
 * diagnostic instead of an internal panic.
 */
void
validateConfig(const GpuConfig &cfg)
{
    if (cfg.numSms == 0 || cfg.coresPerSm == 0)
        fatal("invalid GPU config: numSms and coresPerSm must be > 0");
    if (cfg.maxWarpsPerSm == 0 || cfg.maxCtasPerSm == 0 ||
        cfg.maxThreadsPerSm == 0) {
        fatal("invalid GPU config: SM occupancy limits must be > 0");
    }
    if (cfg.issueWidth == 0 || cfg.numSchedulers == 0)
        fatal("invalid GPU config: issueWidth and numSchedulers must be > 0");
    if (cfg.lineBytes == 0)
        fatal("invalid GPU config: lineBytes must be > 0");
    if (cfg.l1dBytes > 0 &&
        (cfg.l1dAssoc == 0 ||
         cfg.l1dBytes < uint64_t(cfg.lineBytes) * cfg.l1dAssoc)) {
        fatal("invalid GPU config: l1dBytes %u cannot hold one set of "
              "%u-way %u-byte lines",
              cfg.l1dBytes, cfg.l1dAssoc, cfg.lineBytes);
    }
    if (cfg.l2Bytes > 0 &&
        (cfg.l2Assoc == 0 ||
         cfg.l2Bytes < uint64_t(cfg.lineBytes) * cfg.l2Assoc)) {
        fatal("invalid GPU config: l2Bytes %u cannot hold one set of "
              "%u-way %u-byte lines",
              cfg.l2Bytes, cfg.l2Assoc, cfg.lineBytes);
    }
    if (!(cfg.coreClockGhz > 0.0))
        fatal("invalid GPU config: coreClockGhz must be > 0");
    if (!(cfg.dramIssueInterval > 0.0))
        fatal("invalid GPU config: dramIssueInterval must be > 0");
}

/** Runtime kill switch for launch memoization (TANGO_NO_MEMO=1).  Read on
 *  every launch so in-process tests can flip it between runs. */
bool
envNoMemo()
{
    const char *e = std::getenv("TANGO_NO_MEMO");
    return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
}

/** Runtime force-on switch for per-PC profiling (TANGO_PROFILE=1).  Folded
 *  into the effective policy, so it participates in the launch signature
 *  like an explicit SimPolicy::profile request. */
bool
envProfile()
{
    const char *e = std::getenv("TANGO_PROFILE");
    return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
}

/**
 * Digest of everything that determines a launch's trip through the timing
 * model *given* the µ-arch starting state: the program (identity and shape
 * — the pointer alone could be reused by an unrelated later program), the
 * geometry, the exact argument words, the constant bank and every
 * SimPolicy field except `memoize` itself.  GpuConfig is deliberately
 * absent: reconfigure() clears the memo table, so entries never compare
 * across configs.
 */
uint64_t
launchSignature(const KernelLaunch &launch, const SimPolicy &policy)
{
    uint64_t h = digest::kInit;
    const Program &p = *launch.program;
    digest::mix(h, reinterpret_cast<uintptr_t>(&p));
    digest::mixBytes(h, p.name.data(), p.name.size());
    digest::mix(h, p.code.size());
    digest::mix(h, (uint64_t(p.numRegs) << 32) | p.numPreds);
    digest::mix(h, (uint64_t(p.smemBytes) << 32) | p.cmemBytes);
    digest::mix(h, (uint64_t(launch.grid.x) << 32) | launch.grid.y);
    digest::mix(h, (uint64_t(launch.grid.z) << 32) | launch.block.x);
    digest::mix(h, (uint64_t(launch.block.y) << 32) | launch.block.z);
    digest::mix(h, launch.params.size());
    digest::mixBytes(h, launch.params.data(),
                     launch.params.size() * sizeof(uint32_t));
    digest::mix(h, launch.constData.size());
    digest::mixBytes(h, launch.constData.data(), launch.constData.size());
    digest::mix(h, policy.maxResidentCtas);
    digest::mix(h, policy.maxResidentWarps);
    digest::mix(h, policy.maxSampledCtas);
    digest::mix(h, policy.fullSim ? 1 : 0);
    digest::mix(h, policy.maxWarpsPerCta);
    digest::mix(h, policy.maxCycles);
    digest::mix(h, policy.profile ? 1 : 0);
    digest::mix(h, policy.shards);
    return h;
}

/** Bitwise double equality (NaN-safe, -0.0 != +0.0 — exactly the golden
 *  fixtures' notion of "identical"). */
bool
bitEq(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

bool
statSetEqual(const StatSet &a, const StatSet &b)
{
    const auto &ma = a.all();
    const auto &mb = b.all();
    if (ma.size() != mb.size())
        return false;
    auto ib = mb.begin();
    for (auto ia = ma.begin(); ia != ma.end(); ++ia, ++ib) {
        if (ia->first != ib->first || !bitEq(ia->second, ib->second))
            return false;
    }
    return true;
}

/** Bitwise equality of two fully post-processed KernelStats.  Any field a
 *  consumer can observe must match before a launch is declared steady. */
bool
statsEqual(const KernelStats &a, const KernelStats &b)
{
    return a.name == b.name && a.grid == b.grid && a.block == b.block &&
           a.totalCtas == b.totalCtas && a.sampledCtas == b.sampledCtas &&
           a.totalWarpsPerCta == b.totalWarpsPerCta &&
           a.sampledWarpsPerCta == b.sampledWarpsPerCta &&
           bitEq(a.scale, b.scale) && a.smCycles == b.smCycles &&
           bitEq(a.gpuCycles, b.gpuCycles) && bitEq(a.timeSec, b.timeSec) &&
           a.activeSms == b.activeSms &&
           a.regsPerThread == b.regsPerThread &&
           a.maxLiveRegs == b.maxLiveRegs && a.smemBytes == b.smemBytes &&
           a.cmemBytes == b.cmemBytes && a.residentCtas == b.residentCtas &&
           a.occupancyCtas == b.occupancyCtas &&
           bitEq(a.peakPowerW, b.peakPowerW) &&
           bitEq(a.avgPowerW, b.avgPowerW) && bitEq(a.energyJ, b.energyJ) &&
           bitEq(a.peakWindowDynW, b.peakWindowDynW) &&
           statSetEqual(a.stats, b.stats) &&
           (a.profile == nullptr) == (b.profile == nullptr) &&
           (a.profile == nullptr || *a.profile == *b.profile);
}

} // namespace

Gpu::Gpu(GpuConfig cfg) : cfg_(std::move(cfg))
{
    validateConfig(cfg_);
    ensureMemorySystem();
}

void
Gpu::ensureMemorySystem()
{
    if (l2_ && l2BytesBuilt_ == cfg_.l2Bytes)
        return;
    CacheConfig l2cfg;
    l2cfg.sizeBytes = cfg_.l2Bytes;
    l2cfg.assoc = cfg_.l2Assoc;
    l2cfg.lineBytes = cfg_.lineBytes;
    l2cfg.mshrs = cfg_.l2Mshrs;
    l2cfg.writeAllocate = true;
    l2_ = std::make_unique<Cache>(l2cfg);
    dram_ = std::make_unique<Dram>(cfg_.dramLatency, cfg_.dramIssueInterval);
    l2BytesBuilt_ = cfg_.l2Bytes;
}

void
Gpu::reconfigure(GpuConfig cfg)
{
    validateConfig(cfg);
    cfg_ = std::move(cfg);
    // Force the rebuild: the new config may change associativity, line
    // size, MSHRs or DRAM timing without changing l2Bytes, which the
    // lazy ensureMemorySystem() guard would miss.
    l2_.reset();
    dram_.reset();
    l2BytesBuilt_ = 0;
    ensureMemorySystem();
    coldStart();
}

void
Gpu::coldStart()
{
    if (l2_)
        l2_->reset();
    if (dram_)
        dram_->reset();
    // Memoized baselines embed the warm-state fixed point; dropping the
    // warm state invalidates them.  (reconfigure() also funnels through
    // here, so entries never survive a config change either.)
    memo_.clear();
}

uint64_t
Gpu::stateFingerprint(const SmCore &core) const
{
    uint64_t h = digest::kInit;
    digest::mix(h, l2_->stateDigest());
    digest::mix(h, dram_->stateDigest());
    digest::mix(h, core.stateDigest());
    return h;
}

double
Gpu::staticPowerW(uint32_t active_sms) const
{
    const PowerParams &p = cfg_.power;
    return p.idleCoreW * cfg_.numSms +
           p.constDynamicW * std::max(1u, active_sms) + p.boardStaticW;
}

KernelStats
Gpu::launch(const KernelLaunch &launch, const SimPolicy &requested)
{
    TANGO_ASSERT(launch.program != nullptr, "launch without a program");
    launch.program->validate();

    // Fold the TANGO_PROFILE force-on knob into the effective policy up
    // front so the launch signature and the core see the same value.
    // Likewise resolve the shard count now (policy request, else the
    // TANGO_SIM_SHARDS knob): the shard plan must be a pure function of
    // policy + environment — never thread availability — and sharded
    // results differ from sequential ones, so the count is part of the
    // launch signature too.
    SimPolicy policy = requested;
    if (envProfile())
        policy.profile = true;
    policy.shards = effectiveShards(policy);

    const uint64_t totalCtas = launch.grid.count();
    const uint32_t threadsPerCta = launch.threadsPerCta();

    const uint32_t occupancy = cfg_.occupancyCtas(
        threadsPerCta, launch.program->numRegs, launch.program->smemBytes);
    uint32_t resident = occupancy;
    if (policy.maxResidentCtas > 0)
        resident = std::min(resident, policy.maxResidentCtas);
    if (policy.maxResidentWarps > 0) {
        // Warp-budget cap evaluated against the *simulated* warps per
        // CTA (warp sampling below shrinks large blocks).  Single-warp
        // CTAs (AlexNet's one-thread-per-neuron FC blocks) are cheap to
        // simulate and latency-critical, so they get twice the budget —
        // closer to the 32-CTA hardware residency.
        const uint32_t wpc =
            std::min(launch.warpsPerCta(),
                     policy.maxWarpsPerCta > 0 ? policy.maxWarpsPerCta
                                               : launch.warpsPerCta());
        uint32_t budget = policy.maxResidentWarps;
        if (wpc == 1)
            budget *= 2;
        resident = std::min(
            resident, std::max(1u, budget / std::max(1u, wpc)));
    }
    resident = static_cast<uint32_t>(
        std::min<uint64_t>(resident, totalCtas));
    resident = std::max(resident, 1u);

    // Pick the CTAs to simulate: everything for small grids or fullSim,
    // otherwise an evenly-strided sample (keeps spatial locality diverse).
    uint64_t sampled = policy.fullSim
                           ? totalCtas
                           : (policy.maxSampledCtas ? policy.maxSampledCtas
                                                    : resident);
    sampled = std::min(sampled, totalCtas);
    sampled = std::max<uint64_t>(sampled, 1);

    std::vector<uint64_t> ids(sampled);
    if (sampled == totalCtas) {
        for (uint64_t i = 0; i < sampled; i++)
            ids[i] = i;
    } else {
        for (uint64_t i = 0; i < sampled; i++)
            ids[i] = i * totalCtas / sampled;
    }

    // Warp sampling within CTAs: only for barrier-free kernels (their
    // warps are independent) and never when full functional outputs are
    // requested.
    const uint32_t warpsTotal = launch.warpsPerCta();
    uint32_t warpsSampled = warpsTotal;
    if (!policy.fullSim && policy.maxWarpsPerCta > 0 &&
        policy.maxWarpsPerCta < warpsTotal) {
        bool hasBar = false;
        for (const Instr &ins : launch.program->code) {
            if (ins.op == Op::Bar) {
                hasBar = true;
                break;
            }
        }
        if (!hasBar)
            warpsSampled = policy.maxWarpsPerCta;
    }
    std::vector<uint32_t> warpIds(warpsSampled);
    for (uint32_t i = 0; i < warpsSampled; i++)
        warpIds[i] = i * warpsTotal / warpsSampled;
    const double warpScale =
        static_cast<double>(warpsTotal) / warpsSampled;

    // ---- Launch memoization (steady-state replay) ------------------
    // RNN timestep kernels launch the same signature over and over; once
    // two consecutive occurrences are provably identical (bit-identical
    // stats, µ-arch fingerprints and Step streams), later occurrences
    // skip the timing model: functional-only execution computes the real
    // values while the cached statistics are spliced in.  Self-validating:
    // the replay recomputes the Step-stream digest and any divergence
    // (e.g. a data-dependent branch flipping) restores memory and falls
    // back to full simulation.
    MemoEntry *entry = nullptr;
    if (policy.memoize && !envNoMemo()) {
        entry = &memo_[launchSignature(launch, policy)];
        entry->seen++;
    }
    if (entry != nullptr && entry->armed) {
        const uint64_t usedBytes = mem_.used();
        memoSnapshot_.assign(mem_.data(), mem_.data() + usedBytes);
        const uint64_t h = runFunctionalOnly(launch, ids, warpIds, mem_);
        if (h == entry->streamHash) {
            entry->replays++;
            SimMetrics::get().replayed.inc();
            KernelStats ks = entry->stats;
            ks.replayed = true;
            trace::TraceSink *ts = trace::threadSink();
            if (ts) {
                const uint32_t nameId = ts->intern(launch.program->name);
                trace::Event e;
                e.arg = nameId;
                if (ts->wants(trace::EventKind::KernelBegin)) {
                    e.kind = trace::EventKind::KernelBegin;
                    e.cycle = 0;
                    e.payload = totalCtas;
                    ts->record(e);
                }
                if (ts->wants(trace::EventKind::KernelReplay)) {
                    e.kind = trace::EventKind::KernelReplay;
                    e.cycle = 0;
                    e.payload = entry->replays;
                    ts->record(e);
                }
                if (ts->wants(trace::EventKind::KernelEnd)) {
                    e.kind = trace::EventKind::KernelEnd;
                    e.cycle = ks.smCycles;
                    e.payload =
                        ks.stats.has("issued")
                            ? static_cast<uint64_t>(ks.stats.get("issued"))
                            : 0;
                    ts->record(e);
                }
                ts->advanceCycles(ks.smCycles);
            }
            return ks;
        }
        // The kernel diverged from the steady state: undo the functional
        // execution (full simulation below must start from the pre-launch
        // memory image) and re-baseline from scratch.
        std::copy(memoSnapshot_.begin(), memoSnapshot_.end(), mem_.data());
        entry->armed = false;
        entry->hasBaseline = false;
        SimMetrics::get().memoMismatches.inc();
    }
    SimMetrics::get().simulated.inc();

    // The L2 and DRAM persist across launches (a layer's consumer reads
    // the data the producer just wrote through a warm L2, as on real
    // hardware); only the statistics window is per-kernel.
    ensureMemorySystem();
    l2_->clearStats();
    l2_->newTimeDomain();   // the kernel clock restarts at zero
    dram_->reset();         // queue times are absolute cycles too

    // Intra-run sharding: contiguous wave-aligned ranges of the sampled
    // CTA list, each simulated on a private memory system and reduced in
    // fixed shard order (sim/shard.hh).  A single-wave kernel — or an
    // effective shard count of 1 — always takes the exact sequential
    // path, so K=1 results are byte-identical to the unsharded simulator.
    const std::vector<CtaShard> plan =
        planCtaShards(sampled, resident, policy.shards);

    // Tracing: open the kernel span at the kernel's cycle 0 on this
    // thread's sink (if any).  The sink rebases kernel-local cycles onto
    // the run's global timeline (TraceSink::record).
    trace::TraceSink *ts = trace::threadSink();
    uint32_t traceNameId = 0;
    if (ts && ts->wants(trace::EventKind::KernelBegin)) {
        traceNameId = ts->intern(launch.program->name);
        trace::Event e;
        e.kind = trace::EventKind::KernelBegin;
        e.cycle = 0;
        e.payload = totalCtas;
        e.arg = traceNameId;
        ts->record(e);
    }

    // Stream hashing only starts on a signature's second occurrence:
    // one-shot launches (every CNN kernel) pay a hash-map insert and
    // nothing else.
    uint64_t streamHash = 0;
    uint64_t fingerprint = 0;
    const bool hashed = entry != nullptr && entry->seen >= 2;
    KernelStats ks;
    if (plan.size() == 1) {
        l2_->setTrace(ts, trace::CacheLevel::L2);
        dram_->setTrace(ts);
        SmCore core(cfg_, mem_, *l2_, *dram_);
        ks = core.run(launch, ids, warpIds, resident, policy,
                      hashed ? &streamHash : nullptr);
        if (hashed)
            fingerprint = stateFingerprint(core);
    } else {
        ks = launchSharded(launch, policy, plan, ids, warpIds, resident,
                           hashed, ts, &streamHash, &fingerprint);
    }

    if (ts) {
        if (ts->wants(trace::EventKind::KernelEnd)) {
            trace::Event e;
            e.kind = trace::EventKind::KernelEnd;
            e.cycle = ks.smCycles;
            e.payload = ks.stats.has("issued")
                            ? static_cast<uint64_t>(ks.stats.get("issued"))
                            : 0;
            e.arg = traceNameId ? traceNameId
                                : ts->intern(launch.program->name);
            ts->record(e);
        }
        // Later kernels (whose local clocks restart at zero) land after
        // this one on the global trace timeline.
        ts->advanceCycles(ks.smCycles);
    }

    ks.totalCtas = totalCtas;
    ks.sampledCtas = sampled;
    ks.occupancyCtas = static_cast<uint32_t>(
        std::min<uint64_t>(occupancy, totalCtas));
    ks.totalWarpsPerCta = warpsTotal;
    ks.sampledWarpsPerCta = warpsSampled;
    ks.scale = static_cast<double>(totalCtas) / static_cast<double>(sampled) *
               warpScale;
    ks.stats.scale(ks.scale);
    if (ks.profile) {
        // The profile is still exclusively ours here (not yet published to
        // the memo table), so recording the stat scale in place is safe.
        ks.profile->scale = ks.scale;
#ifndef NDEBUG
        std::string why;
        TANGO_ASSERT(profileConsistent(*ks.profile, ks.stats, &why),
                     "per-PC profile out of step with KernelStats for %s: %s",
                     ks.name.c_str(), why.c_str());
#endif
    }

    // Whole-GPU time extrapolation by CTA waves; warp sampling
    // extrapolates linearly (exact for compute-bound kernels).
    const uint64_t ctasPerWaveGpu = uint64_t(resident) * cfg_.numSms;
    const double wavesTotal =
        std::ceil(static_cast<double>(totalCtas) / ctasPerWaveGpu);
    const double wavesSim =
        std::ceil(static_cast<double>(sampled) / resident);
    ks.gpuCycles = static_cast<double>(ks.smCycles) * wavesTotal / wavesSim *
                   warpScale;
    ks.timeSec = ks.gpuCycles / (cfg_.coreClockGhz * 1e9);
    ks.activeSms = static_cast<uint32_t>(std::min<uint64_t>(
        cfg_.numSms, (totalCtas + resident - 1) / resident));

    // Power: dynamic energy from (scaled) events + static over the run.
    const PowerBreakdown pb =
        computeBreakdown(ks.stats, cfg_, ks.gpuCycles, ks.activeSms);
    ks.energyJ = pb.totalJ();
    ks.avgPowerW = ks.timeSec > 0 ? ks.energyJ / ks.timeSec : 0.0;

    // Peak power: the measured busiest window, extrapolated to the full
    // warp population, but never beyond the issue-saturated rate (energy
    // per issue x issue width x clock).
    double dynJ = 0.0;
    for (size_t i = 0; i < numPowerComps; i++) {
        const auto c = static_cast<PowerComp>(i);
        if (c != PowerComp::IDLE_CORE && c != PowerComp::CONST_DYNAMIC)
            dynJ += pb.energyJ[i];
    }
    const double issued = std::max(1.0, ks.stats.get("issued"));
    const double perIssueJ = dynJ / issued;
    const double clockHz = cfg_.coreClockGhz * 1e9;
    const double saturatedW = perIssueJ * cfg_.issueWidth * clockHz;
    const double windowW =
        std::min(ks.peakWindowDynW * warpScale, saturatedW);
    ks.peakPowerW = windowW * ks.activeSms + staticPowerW(ks.activeSms);

    if (hashed) {
        // Arm on the second *identical* full simulation in a row;
        // otherwise (re)baseline and keep watching.
        const uint64_t fp = fingerprint;
        if (entry->hasBaseline && entry->fingerprint == fp &&
            entry->streamHash == streamHash && statsEqual(entry->stats, ks)) {
            entry->armed = true;
        } else {
            entry->hasBaseline = true;
            entry->fingerprint = fp;
            entry->streamHash = streamHash;
            entry->stats = ks;
        }
    }
    return ks;
}

KernelStats
Gpu::launchSharded(const KernelLaunch &launch, const SimPolicy &policy,
                   const std::vector<CtaShard> &plan,
                   const std::vector<uint64_t> &ids,
                   const std::vector<uint32_t> &warp_ids, uint32_t resident,
                   bool hashed, trace::TraceSink *parent_sink,
                   uint64_t *stream_hash, uint64_t *fingerprint)
{
    struct ShardResult
    {
        KernelStats ks;
        uint64_t fingerprint = 0;
        std::vector<uint64_t> streamDigests;
        std::unique_ptr<trace::RingSink> sink;
        std::unique_ptr<Cache> l2;
    };
    std::vector<ShardResult> results(plan.size());
    SimMetrics::get().shardedLaunches.inc();
    SimMetrics::get().shardFanout.inc(plan.size());

    // When the launch is traced, each shard records into a private ring
    // (same event selection as the parent) that is merged below in shard
    // order — a deterministic stream no matter which shard finishes
    // first.  Name-carrying events (KernelBegin/End/Replay) are recorded
    // at this level, never inside the core, so no intern-id remapping is
    // needed.
    if (parent_sink) {
        trace::RingOptions opt;
        opt.capacity = 1u << 18;
        opt.mask = parent_sink->mask();
        opt.samplePeriod = parent_sink->samplePeriod();
        for (auto &r : results)
            r.sink = std::make_unique<trace::RingSink>(opt);
    }

    // Worker body.  Everything a shard touches is private: an L2 clone
    // seeded from the master's current warm state, a fresh DRAM channel,
    // its own SmCore (constructed on the worker thread, under the
    // shard's sink), and its own trace ring.  DeviceMemory is shared —
    // CTAs of one launch write disjoint outputs (the CUDA independence
    // contract the kernels are written against) — so functional results
    // match the sequential interleaving.
    const auto runShard = [&](size_t i) {
        ShardResult &r = results[i];
        trace::ScopedSink scoped(r.sink.get());
        auto l2 = std::make_unique<Cache>(*l2_);
        Dram dram(cfg_.dramLatency, cfg_.dramIssueInterval);
        if (r.sink) {
            l2->setTrace(r.sink.get(), trace::CacheLevel::L2);
            dram.setTrace(r.sink.get());
        }
        const std::vector<uint64_t> shardIds(
            ids.begin() + static_cast<ptrdiff_t>(plan[i].begin),
            ids.begin() + static_cast<ptrdiff_t>(plan[i].end));
        uint64_t sh = 0;
        SmCore core(cfg_, mem_, *l2, dram);
        r.ks = core.run(launch, shardIds, warp_ids, plan[i].resident,
                        policy, hashed ? &sh : nullptr);
        if (hashed) {
            r.streamDigests = core.streamDigests();
            uint64_t fp = digest::kInit;
            digest::mix(fp, l2->stateDigest());
            digest::mix(fp, dram.stateDigest());
            digest::mix(fp, core.stateDigest());
            r.fingerprint = fp;
        }
        // The clone outlives the shard ring (warm-state adoption below);
        // drop the sink pointer before it dangles.
        l2->setTrace(nullptr, trace::CacheLevel::L2);
        r.l2 = std::move(l2);
    };

    std::vector<std::thread> workers;
    workers.reserve(plan.size() - 1);
    for (size_t i = 1; i < plan.size(); i++)
        workers.emplace_back(runShard, i);
    runShard(0);
    for (auto &t : workers)
        t.join();

    // --- reduce, strictly in shard order ----------------------------
    // Raw counters are integer-valued doubles (and uint64 arrays in the
    // profile), so the shard-order fold is exact; scaling happens once,
    // in launch(), after this returns.
    KernelStats ks = std::move(results[0].ks);
    for (size_t i = 1; i < results.size(); i++)
        foldShardStats(ks, results[i].ks);
    // Report the launch residency (the machine model), not the first
    // shard's slice size: wave extrapolation and occupancy reporting are
    // properties of the launch, independent of how it was sharded.
    ks.residentCtas = resident;

    if (hashed) {
        // Shard ranges are contiguous in launch position, so the
        // shard-order concatenation of per-warp digests is the whole
        // launch's digest array — the same fold a sequential run (and
        // runFunctionalOnly, which memo replays verify against) computes.
        std::vector<std::vector<uint64_t>> digests;
        digests.reserve(results.size());
        for (auto &r : results)
            digests.push_back(std::move(r.streamDigests));
        *stream_hash = combineStreamDigests(digests);
        uint64_t fp = digest::kInit;
        for (const auto &r : results)
            digest::mix(fp, r.fingerprint);
        *fingerprint = fp;
    }

    // Merge shard traces onto the parent sink in shard order, rebasing
    // each shard onto the reduced timeline (shards back-to-back, the
    // same order foldShardStats accumulated smCycles in) and tagging
    // every event with its shard index as the core id.
    if (parent_sink) {
        uint64_t offset = 0;
        uint64_t drops = 0;
        for (size_t i = 0; i < results.size(); i++) {
            trace::RingSink &ring = *results[i].sink;
            drops += ring.dropped();
            for (uint8_t c : ring.cores()) {
                for (trace::Event e : ring.coreEvents(c)) {
                    e.core = static_cast<uint8_t>(i);
                    e.cycle += offset;
                    parent_sink->record(e);
                }
            }
            offset += results[i].ks.smCycles;
        }
        if (drops > 0) {
            warn("sharded launch of %s dropped %llu trace events "
                 "(per-shard ring full)",
                 launch.program->name.c_str(),
                 static_cast<unsigned long long>(drops));
        }
    }

    // Adopt the last shard's end-of-launch L2 as the device's warm state
    // for the next launch — a deterministic stand-in for the sequential
    // end state (the last shard simulated the final waves of the sample).
    *l2_ = *results.back().l2;

    return ks;
}

} // namespace tango::sim
