/**
 * @file
 * A small assembler ("kernel DSL") for emitting tango virtual-ISA programs.
 *
 * This is the layer in which the suite's layer kernels are written — the
 * role CUDA C plays in the original Tango.  The builder hands out virtual
 * registers (which are physical — kernels are written with modest register
 *  budgets, as in the paper's Table III), emits typed instructions,
 * supports guard predicates, labels with back-patching, and structured
 * loops.
 */

#ifndef TANGO_KERNELS_BUILDER_HH
#define TANGO_KERNELS_BUILDER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/program.hh"

namespace tango::kern {

using sim::Cmp;
using sim::Dim3;
using sim::DType;
using sim::Instr;
using sim::Op;
using sim::Program;
using sim::Space;
using sim::SReg;

/** A general-purpose register handle. */
struct Reg
{
    uint8_t idx = 0xff;
    bool valid() const { return idx != 0xff; }
};

/** A predicate register handle. */
struct PredReg
{
    uint8_t idx = 0xff;
    bool valid() const { return idx != 0xff; }
};

/** A forward-referencable code label. */
struct Label
{
    int id = -1;
};

/** Program builder; one instance per kernel. */
class Builder
{
  public:
    /** @param name kernel name recorded into the Program. */
    explicit Builder(std::string name);

    // ----- resources ------------------------------------------------------
    /** Allocate a fresh register (reuses released ones). */
    Reg reg();
    /** Return a register to the pool. */
    void release(Reg r);
    /** Allocate a predicate register. */
    PredReg pred();

    /** Declare static shared memory; @return byte offset of the block. */
    uint32_t shared(uint32_t bytes);
    /** Declare constant-bank usage; @return byte offset of the block. */
    uint32_t constant(uint32_t bytes);

    // ----- guards ---------------------------------------------------------
    /** All subsequently emitted instructions execute under @p p. */
    void guard(PredReg p, bool negate = false);
    /** Clear the active guard. */
    void endGuard();

    // ----- source mapping ---------------------------------------------------
    /**
     * Scoped statement label (mark()): while the returned guard is alive,
     * every emitted instruction is tagged with @p label in the program's
     * DebugInfo table.  Scopes nest — an inner mark() overrides until its
     * guard dies, then the outer label resumes.  The profiler rolls per-PC
     * counters up by these labels, so name them after the CUDA-C statement
     * the emission corresponds to ("conv.mac", "gru.gate_sigmoid", ...).
     */
    class Mark
    {
      public:
        Mark(Mark &&o) noexcept : b_(o.b_), prev_(o.prev_)
        {
            o.b_ = nullptr;
        }
        Mark(const Mark &) = delete;
        Mark &operator=(const Mark &) = delete;
        Mark &operator=(Mark &&) = delete;
        ~Mark()
        {
            if (b_)
                b_->curLabel_ = prev_;
        }

      private:
        friend class Builder;
        Mark(Builder *b, uint16_t prev) : b_(b), prev_(prev) {}
        Builder *b_;
        uint16_t prev_;
    };

    /** Tag subsequently emitted instructions with @p label until the
     *  returned guard is destroyed. */
    [[nodiscard]] Mark mark(const std::string &label);

    // ----- moves / immediates ----------------------------------------------
    Reg movS(SReg s);                    ///< read a special register
    Reg immU(uint32_t v);                ///< materialize a u32 immediate
    Reg immF(float v);                   ///< materialize an f32 immediate
    void movR(Reg d, Reg a, DType t = DType::U32);
    void movU(Reg d, uint32_t v);
    void movF(Reg d, float v);

    // ----- arithmetic (three-address, explicit destination) ----------------
    void emit3(Op op, DType t, Reg d, Reg a, Reg b);
    void emit3i(Op op, DType t, Reg d, Reg a, uint32_t imm);
    void emit3f(Op op, Reg d, Reg a, float imm);
    void emit2(Op op, DType t, Reg d, Reg a);
    void mad(DType t, Reg d, Reg a, Reg b, Reg c);

    // Convenience wrappers that allocate the destination.
    Reg add(DType t, Reg a, Reg b);
    Reg addi(DType t, Reg a, uint32_t imm);
    Reg mul(DType t, Reg a, Reg b);
    Reg muli(DType t, Reg a, uint32_t imm);
    Reg shli(Reg a, uint32_t sh);
    Reg madr(DType t, Reg a, Reg b, Reg c);
    Reg cvt(DType to, DType from, Reg a);
    /** cvt with an explicit destination register. */
    void cvtTo(DType to, DType from, Reg d, Reg a);

    // ----- comparisons ------------------------------------------------------
    /** setp: p = (a cmp b). */
    void setp(PredReg p, DType t, Cmp c, Reg a, Reg b);
    void setpi(PredReg p, DType t, Cmp c, Reg a, uint32_t imm);
    /** selp: d = p ? a : b. */
    void selp(DType t, Reg d, Reg a, Reg b, PredReg p);

    // ----- memory -----------------------------------------------------------
    /** ld: d = space[addr + off]. */
    void ld(DType t, Space sp, Reg d, Reg addr, uint32_t off = 0);
    /** st: space[addr + off] = v. */
    void st(DType t, Space sp, Reg addr, Reg v, uint32_t off = 0);
    /** Load a 32-bit kernel parameter by index. */
    Reg param(uint32_t index);
    /** Load from the constant bank at an immediate byte offset. */
    Reg ldc(DType t, uint32_t off);
    /** set-to-register: d = (a cmp b) ? 1 : 0. */
    void setr(DType t, Cmp c, Reg d, Reg a, Reg b);

    // ----- control flow -----------------------------------------------------
    Label label();
    void bind(Label l);
    void bra(Label l);
    void braIf(Label l, PredReg p, bool negate = false);
    void ssy(Label reconv);
    void bar();
    void retp();
    void nop();
    void exit();

    /**
     * Emit a canonical counted loop: for (i = begin; i < end; i++) body.
     * @param i    pre-allocated counter register (u32).
     * @param end  loop bound register (u32).
     */
    void forLoop(Reg i, uint32_t begin, Reg end,
                 const std::function<void()> &body);
    /** Counted loop with an immediate bound. */
    void forLoopI(Reg i, uint32_t begin, uint32_t end,
                  const std::function<void()> &body);

    // ----- finalization -----------------------------------------------------
    /** Seal the program (appends exit if missing) and validate it. */
    std::shared_ptr<Program> finish();

    /** @return instructions emitted so far. */
    size_t size() const { return prog_->code.size(); }

  private:
    Instr &push(Instr ins);
    /** Record the active mark() label for the instruction just appended
     *  (every append path — push() and the raw braIf() — goes through
     *  this, so pc -> label coverage has no holes). */
    void recordLabel();

    std::shared_ptr<Program> prog_;
    std::vector<uint8_t> freeRegs_;
    uint32_t nextReg_ = 0;
    uint32_t nextPred_ = 0;
    std::vector<int> labelPos_;                  // label id -> pc (-1 open)
    std::vector<std::pair<size_t, int>> fixups_; // (pc, label id)
    uint8_t guard_ = sim::noPred;
    bool guardNeg_ = false;
    uint16_t curLabel_ = 0;
    bool finished_ = false;
};

} // namespace tango::kern

#endif // TANGO_KERNELS_BUILDER_HH
