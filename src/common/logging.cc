#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace tango {

namespace {
bool verboseFlag = true;

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!verboseFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stdout, "info: ");
    std::vfprintf(stdout, fmt, ap);
    std::fprintf(stdout, "\n");
    va_end(ap);
}

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

} // namespace tango
