/**
 * @file
 * Fig 5 reproduction: average power breakdown per micro-architecture
 * component for every network.
 *
 * Paper shape to hold: the key consumers are the register file (RFP),
 * the L2 cache (L2CP) and idle-core leakage (IDLE_COREP).
 */

#include "bench_util.hh"

#include "sim/power.hh"

namespace {

using namespace tango;

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    const auto nets = nn::models::allNames();

    std::vector<bench::RunKey> keys;
    for (const auto &net : nets)
        keys.push_back({net});
    bench::prefetch(keys);

    std::vector<std::string> compNames;
    for (size_t c = 0; c < sim::numPowerComps; c++) {
        compNames.push_back(
            sim::powerCompName(static_cast<sim::PowerComp>(c)));
    }

    std::vector<std::vector<double>> values;   // [net][component]
    for (const auto &net : nets) {
        const rt::NetRun &run = bench::netRun({net});
        // Recompute the component breakdown from the merged counters.
        const sim::GpuConfig cfg = bench::makeConfig({net});
        double gpuCycles = 0.0;
        for (const auto &l : run.layers)
            gpuCycles += l.gpuCycles();
        const sim::PowerBreakdown pb = sim::computeBreakdown(
            run.totals, cfg, gpuCycles, cfg.numSms);
        const double total = pb.totalJ();
        std::vector<double> col;
        for (size_t c = 0; c < sim::numPowerComps; c++)
            col.push_back(total > 0 ? pb.energyJ[c] / total : 0.0);
        values.push_back(col);

        // Headline: RF + L2 + idle-core share.
        const double key =
            (pb.energyJ[size_t(sim::PowerComp::RF)] +
             pb.energyJ[size_t(sim::PowerComp::L2C)] +
             pb.energyJ[size_t(sim::PowerComp::IDLE_CORE)]) /
            (total > 0 ? total : 1.0);
        bench::registerValue("fig05/" + net + "/rf_l2_idle_share", "share",
                             key);
    }

    rt::printStacked(std::cout,
                     "Fig 5: breakdown of average power w.r.t. HW "
                     "components",
                     nets, compNames, values, /*as_percent=*/true);

    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
