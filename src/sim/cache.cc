#include "sim/cache.hh"

#include "common/logging.hh"
#include "sim/digest.hh"

#include <algorithm>

namespace tango::sim {

namespace {

bool
isPow2(uint64_t v)
{
    return v && (v & (v - 1)) == 0;
}

uint32_t
log2u(uint64_t v)
{
    uint32_t s = 0;
    while ((1ull << s) < v)
        s++;
    return s;
}

} // namespace

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    if (cfg_.sizeBytes > 0) {
        TANGO_ASSERT(cfg_.lineBytes > 0 && cfg_.assoc > 0, "bad geometry");
        sets_ = cfg_.sizeBytes / (cfg_.lineBytes * cfg_.assoc);
        TANGO_ASSERT(sets_ > 0, "cache smaller than one set");
        if (isPow2(cfg_.lineBytes))
            lineShift_ = log2u(cfg_.lineBytes);
        if (isPow2(sets_))
            setMask_ = sets_ - 1;
        else
            modM_ = ~0ull / sets_ + 1;
        tag_.assign(size_t(sets_) * cfg_.assoc, invalidTag);
        lastUse_.assign(size_t(sets_) * cfg_.assoc, 0);
        fillAt_.assign(size_t(sets_) * cfg_.assoc, 0);
    }
    mshrs_.resize(cfg_.mshrs);
}

void
Cache::retireMshrs(uint64_t now)
{
    if (now < minFill_)
        return;
    uint64_t newMin = ~0ull;
    for (uint32_t i = 0; i < mshrLive_;) {
        if (mshrs_[i].fillCycle <= now) {
            mshrs_[i] = mshrs_[--mshrLive_];
        } else {
            if (mshrs_[i].fillCycle < newMin)
                newMin = mshrs_[i].fillCycle;
            i++;
        }
    }
    minFill_ = newMin;
}

int
Cache::findMshr(uint64_t la) const
{
    for (uint32_t i = 0; i < mshrLive_; i++) {
        if (mshrs_[i].lineAddr == la)
            return int(i);
    }
    return -1;
}

Cache::Result
Cache::access(uint32_t addr, bool write, uint64_t now, WayHint *hint)
{
    Result res;
    stats_.accesses++;
    if (write)
        stats_.writeAccesses++;
    if (bypassed()) {
        stats_.misses++;
        return res;
    }

    const uint64_t la = lineAddr(addr);

    // Hits never scan the MSHR file: the way's pending fill (if any) sits
    // in the fillAt_ sidecar, and a value that has passed means the fill
    // completed — exactly when the MSHR would have been retired.

    // Way-predictor fast path: the hinted way still holds this line.
    if (hint && hint->lineAddr == la && tag_[hint->index] == la) {
        lastUse_[hint->index] = ++useClock_;
        stats_.hits++;
        res.hit = true;
        const uint64_t fill = fillAt_[hint->index];
        if (fill > now)
            res.fillCycle = fill;
        return res;
    }

    const uint32_t set = setIndex(la);
    const size_t base = size_t(set) * cfg_.assoc;

    for (uint32_t w = 0; w < cfg_.assoc; w++) {
        if (tag_[base + w] == la) {
            lastUse_[base + w] = ++useClock_;
            stats_.hits++;
            res.hit = true;
            const uint64_t fill = fillAt_[base + w];
            if (fill > now)
                res.fillCycle = fill;
            if (hint) {
                hint->lineAddr = la;
                hint->index = uint32_t(base + w);
            }
            return res;
        }
    }

    // Miss: pick an invalid way, else the LRU way.
    size_t victim = base;
    for (uint32_t w = 0; w < cfg_.assoc; w++) {
        if (tag_[base + w] == invalidTag) {
            victim = base + w;
            break;
        }
        if (lastUse_[base + w] < lastUse_[victim])
            victim = base + w;
    }

    stats_.misses++;
    if (trace_ && trace_->wants(trace::EventKind::CacheMiss)) {
        trace::Event e;
        e.kind = trace::EventKind::CacheMiss;
        e.cycle = now;
        e.payload = la;
        e.arg = static_cast<uint32_t>(traceLevel_);
        e.core = traceCore_;
        trace_->record(e);
    }

    // A miss on a line already being fetched hits in the MSHR file.
    retireMshrs(now);
    const int m = findMshr(la);
    if (m >= 0) {
        res.mshrMerged = true;
        res.fillCycle = mshrs_[m].fillCycle;
    }

    // Fill (allocate) unless this is a no-allocate write.
    if (!write || cfg_.writeAllocate) {
        tag_[victim] = la;
        lastUse_[victim] = ++useClock_;
        fillAt_[victim] = m >= 0 ? mshrs_[m].fillCycle : 0;
        if (hint) {
            hint->lineAddr = la;
            hint->index = uint32_t(victim);
        }
    }
    return res;
}

bool
Cache::mshrAvailable(uint32_t addr, uint64_t now)
{
    if (bypassed())
        return true;
    retireMshrs(now);
    if (findMshr(lineAddr(addr)) >= 0)
        return true;    // merge
    if (mshrLive_ < mshrs_.size())
        return true;
    stats_.mshrFullEvents++;
    return false;
}

void
Cache::allocateMshr(uint32_t addr, uint64_t fill, uint64_t now)
{
    if (bypassed())
        return;
    const uint64_t la = lineAddr(addr);
    if (trace_ && trace_->wants(trace::EventKind::CacheFill)) {
        // Stamped at the requesting access's cycle with the fill delay
        // as payload: an event at the absolute fill cycle would run
        // ahead of later accesses and break per-track monotonicity.
        trace::Event e;
        e.kind = trace::EventKind::CacheFill;
        e.cycle = now;
        e.payload = fill > now ? fill - now : 0;
        e.arg = static_cast<uint32_t>(traceLevel_);
        e.core = traceCore_;
        trace_->record(e);
    }

    // Mirror the (new or merge-extended) fill time into the tag sidecar
    // so hits on the in-flight line see it without an MSHR scan.  The
    // line may legitimately be absent (no-allocate write miss, or evicted
    // while in flight); a later refill copies the time back (access()).
    const auto mirrorFill = [&](uint64_t f) {
        const size_t base = size_t(setIndex(la)) * cfg_.assoc;
        for (uint32_t w = 0; w < cfg_.assoc; w++) {
            if (tag_[base + w] == la) {
                fillAt_[base + w] = f;
                return;
            }
        }
    };

    const int m = findMshr(la);
    if (m >= 0) {
        // Merged: extend to the later fill time.  minFill_ stays a valid
        // lower bound, so no recomputation is needed.
        if (fill > mshrs_[m].fillCycle)
            mshrs_[m].fillCycle = fill;
        mirrorFill(mshrs_[m].fillCycle);
        return;
    }
    if (mshrLive_ < mshrs_.size()) {
        mshrs_[mshrLive_].lineAddr = la;
        mshrs_[mshrLive_].fillCycle = fill;
        mshrLive_++;
        if (fill < minFill_)
            minFill_ = fill;
        mirrorFill(fill);
        return;
    }
    // Caller must check mshrAvailable() first; dropping the reservation
    // only makes timing slightly optimistic, so warn rather than die.
    warn("MSHR allocation with full file (line 0x%llx)",
         static_cast<unsigned long long>(la));
}

uint64_t
Cache::pendingFillCycle(uint32_t addr, uint64_t now)
{
    if (bypassed())
        return 0;
    retireMshrs(now);
    const int m = findMshr(lineAddr(addr));
    return m >= 0 ? mshrs_[m].fillCycle : 0;
}

uint64_t
Cache::stateDigest() const
{
    uint64_t h = digest::kInit;
    digest::mix(h, cfg_.sizeBytes);
    digest::mix(h, cfg_.assoc);
    if (!bypassed()) {
        // Per set: fold (tag, pending fill) in recency order.  Insertion
        // sort on the way indices — assoc is small (4..16) and the ways
        // of a set are adjacent in the flat arrays.
        uint32_t order[64];
        const uint32_t assoc = std::min<uint32_t>(cfg_.assoc, 64);
        for (uint32_t set = 0; set < sets_; set++) {
            const size_t base = size_t(set) * cfg_.assoc;
            for (uint32_t w = 0; w < assoc; w++) {
                uint32_t i = w;
                while (i > 0 &&
                       lastUse_[base + order[i - 1]] <
                           lastUse_[base + w]) {
                    order[i] = order[i - 1];
                    i--;
                }
                order[i] = w;
            }
            for (uint32_t w = 0; w < assoc; w++) {
                digest::mix(h, tag_[base + order[w]]);
                digest::mix(h, fillAt_[base + order[w]]);
            }
        }
    }
    // In-flight MSHRs.  The compact array's order is a deterministic
    // function of the access/retire history, so folding in array order
    // is stable across identical launches.
    digest::mix(h, mshrLive_);
    for (uint32_t i = 0; i < mshrLive_; i++) {
        digest::mix(h, mshrs_[i].lineAddr);
        digest::mix(h, mshrs_[i].fillCycle);
    }
    return h;
}

void
Cache::newTimeDomain()
{
    mshrLive_ = 0;
    minFill_ = ~0ull;
    // Fill times are absolute cycles of the old domain; under the new
    // (restarted) clock they would read as far-future pending fills.
    std::fill(fillAt_.begin(), fillAt_.end(), 0);
}

void
Cache::reset()
{
    std::fill(tag_.begin(), tag_.end(), invalidTag);
    std::fill(lastUse_.begin(), lastUse_.end(), 0);
    std::fill(fillAt_.begin(), fillAt_.end(), 0);
    mshrLive_ = 0;
    minFill_ = ~0ull;
    stats_ = CacheStats{};
    useClock_ = 0;
}

} // namespace tango::sim
