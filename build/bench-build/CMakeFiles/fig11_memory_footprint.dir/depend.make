# Empty dependencies file for fig11_memory_footprint.
# This may be replaced when dependencies are built.
