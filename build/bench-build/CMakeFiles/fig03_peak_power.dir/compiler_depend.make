# Empty compiler generated dependencies file for fig03_peak_power.
# This may be replaced when dependencies are built.
