#include "runtime/run_cache.hh"

#include "common/json.hh"
#include "common/logging.hh"

#include <fstream>
#include <sstream>
#include <vector>

namespace tango::rt {

namespace {

// ---------------------------------------------------------------- writer

using json::ObjWriter;
using json::appendDouble;
using json::appendEscaped;
using json::appendU64;

void
appendStatSet(std::string &out, const StatSet &st)
{
    out += '{';
    bool first = true;
    for (const auto &[name, v] : st.all()) {
        if (!first)
            out += ',';
        first = false;
        appendEscaped(out, name);
        out += ':';
        appendDouble(out, v);
    }
    out += '}';
}

void
appendU64Vec(std::string &out, const std::vector<uint64_t> &v)
{
    out += '[';
    for (size_t i = 0; i < v.size(); i++) {
        if (i)
            out += ',';
        appendU64(out, v[i]);
    }
    out += ']';
}

void
appendU16Vec(std::string &out, const std::vector<uint16_t> &v)
{
    out += '[';
    for (size_t i = 0; i < v.size(); i++) {
        if (i)
            out += ',';
        appendU64(out, v[i]);
    }
    out += ']';
}

void
appendStrVec(std::string &out, const std::vector<std::string> &v)
{
    out += '[';
    for (size_t i = 0; i < v.size(); i++) {
        if (i)
            out += ',';
        appendEscaped(out, v[i]);
    }
    out += ']';
}

void
appendProfile(std::string &out, const sim::KernelProfile &p)
{
    ObjWriter o(out);
    o.key("labels");
    appendStrVec(out, p.labels);
    o.key("pcLabel");
    appendU16Vec(out, p.pcLabel);
    o.key("disasm");
    appendStrVec(out, p.disasm);
    o.key("issued");
    appendU64Vec(out, p.issued);
    o.key("stalls");
    appendU64Vec(out, p.stalls);
    o.key("l1dMisses");
    appendU64Vec(out, p.l1dMisses);
    o.key("l2Misses");
    appendU64Vec(out, p.l2Misses);
    o.key("dramTxns");
    appendU64Vec(out, p.dramTxns);
    o.u64("lineBytes", p.lineBytes);
    o.num("scale", p.scale);
    o.num("workScale", p.workScale);
    o.close();
}

void
appendDim3(std::string &out, const sim::Dim3 &d)
{
    out += '[';
    appendU64(out, d.x);
    out += ',';
    appendU64(out, d.y);
    out += ',';
    appendU64(out, d.z);
    out += ']';
}

void
appendKernelStats(std::string &out, const sim::KernelStats &k)
{
    ObjWriter o(out);
    o.str("name", k.name);
    o.key("grid");
    appendDim3(out, k.grid);
    o.key("block");
    appendDim3(out, k.block);
    o.u64("totalCtas", k.totalCtas);
    o.u64("sampledCtas", k.sampledCtas);
    o.u64("totalWarpsPerCta", k.totalWarpsPerCta);
    o.u64("sampledWarpsPerCta", k.sampledWarpsPerCta);
    o.num("scale", k.scale);
    o.u64("smCycles", k.smCycles);
    o.num("gpuCycles", k.gpuCycles);
    o.num("timeSec", k.timeSec);
    o.u64("activeSms", k.activeSms);
    o.key("stats");
    appendStatSet(out, k.stats);
    o.u64("regsPerThread", k.regsPerThread);
    o.u64("maxLiveRegs", k.maxLiveRegs);
    o.u64("smemBytes", k.smemBytes);
    o.u64("cmemBytes", k.cmemBytes);
    o.u64("residentCtas", k.residentCtas);
    o.u64("occupancyCtas", k.occupancyCtas);
    o.num("peakPowerW", k.peakPowerW);
    o.num("avgPowerW", k.avgPowerW);
    o.num("energyJ", k.energyJ);
    o.num("peakWindowDynW", k.peakWindowDynW);
    o.u64("replayed", k.replayed ? 1 : 0);
    if (k.profile) {
        o.key("profile");
        appendProfile(out, *k.profile);
    }
    o.close();
}

void
appendLayerRun(std::string &out, const LayerRun &l)
{
    ObjWriter o(out);
    o.num("layerIndex", l.layerIndex);
    o.str("name", l.name);
    o.str("figType", l.figType);
    o.key("kernels");
    out += '[';
    for (size_t i = 0; i < l.kernels.size(); i++) {
        if (i)
            out += ',';
        appendKernelStats(out, l.kernels[i]);
    }
    out += ']';
    o.close();
}

// ---------------------------------------------------------------- parser

/** The shared recursive-descent reader (common/json.hh).  Its
 *  token-level primitives let loadRunCache walk the top-level "runs"
 *  object entry by entry and salvage the valid prefix of a damaged
 *  file. */
using Json = json::Reader;

sim::Dim3
parseDim3(const Json::Value &v)
{
    sim::Dim3 d;
    if (v.kind == Json::Value::Kind::Arr && v.arr.size() == 3) {
        d.x = static_cast<uint32_t>(v.arr[0].num);
        d.y = static_cast<uint32_t>(v.arr[1].num);
        d.z = static_cast<uint32_t>(v.arr[2].num);
    }
    return d;
}

StatSet
parseStatSet(const Json::Value &v)
{
    StatSet st;
    for (const auto &[name, val] : v.obj)
        st.set(name, val.num);
    return st;
}

std::vector<uint64_t>
parseU64Vec(const Json::Value *v)
{
    std::vector<uint64_t> out;
    if (v == nullptr || v->kind != Json::Value::Kind::Arr)
        return out;
    out.reserve(v->arr.size());
    for (const auto &e : v->arr)
        out.push_back(static_cast<uint64_t>(e.num));
    return out;
}

std::vector<std::string>
parseStrVec(const Json::Value *v)
{
    std::vector<std::string> out;
    if (v == nullptr || v->kind != Json::Value::Kind::Arr)
        return out;
    out.reserve(v->arr.size());
    for (const auto &e : v->arr)
        out.push_back(e.str);
    return out;
}

std::shared_ptr<sim::KernelProfile>
parseProfile(const Json::Value &v)
{
    auto p = std::make_shared<sim::KernelProfile>();
    p->labels = parseStrVec(v.find("labels"));
    if (p->labels.empty())
        p->labels.emplace_back();   // id 0 ("") must always exist
    for (uint64_t id : parseU64Vec(v.find("pcLabel")))
        p->pcLabel.push_back(static_cast<uint16_t>(id));
    p->disasm = parseStrVec(v.find("disasm"));
    p->issued = parseU64Vec(v.find("issued"));
    p->stalls = parseU64Vec(v.find("stalls"));
    p->l1dMisses = parseU64Vec(v.find("l1dMisses"));
    p->l2Misses = parseU64Vec(v.find("l2Misses"));
    p->dramTxns = parseU64Vec(v.find("dramTxns"));
    p->lineBytes = static_cast<uint32_t>(v.u64Or("lineBytes", 128));
    p->scale = v.numOr("scale", 1.0);
    p->workScale = v.numOr("workScale", 1.0);
    return p;
}

sim::KernelStats
parseKernelStats(const Json::Value &v)
{
    sim::KernelStats k;
    k.name = v.strOr("name");
    if (const auto *g = v.find("grid"))
        k.grid = parseDim3(*g);
    if (const auto *b = v.find("block"))
        k.block = parseDim3(*b);
    k.totalCtas = v.u64Or("totalCtas");
    k.sampledCtas = v.u64Or("sampledCtas");
    k.totalWarpsPerCta = static_cast<uint32_t>(v.u64Or("totalWarpsPerCta"));
    k.sampledWarpsPerCta =
        static_cast<uint32_t>(v.u64Or("sampledWarpsPerCta"));
    k.scale = v.numOr("scale", 1.0);
    k.smCycles = v.u64Or("smCycles");
    k.gpuCycles = v.numOr("gpuCycles");
    k.timeSec = v.numOr("timeSec");
    k.activeSms = static_cast<uint32_t>(v.u64Or("activeSms", 1));
    if (const auto *st = v.find("stats"))
        k.stats = parseStatSet(*st);
    k.regsPerThread = static_cast<uint32_t>(v.u64Or("regsPerThread"));
    k.maxLiveRegs = static_cast<uint32_t>(v.u64Or("maxLiveRegs"));
    k.smemBytes = static_cast<uint32_t>(v.u64Or("smemBytes"));
    k.cmemBytes = static_cast<uint32_t>(v.u64Or("cmemBytes"));
    k.residentCtas = static_cast<uint32_t>(v.u64Or("residentCtas"));
    k.occupancyCtas = static_cast<uint32_t>(v.u64Or("occupancyCtas"));
    k.peakPowerW = v.numOr("peakPowerW");
    k.avgPowerW = v.numOr("avgPowerW");
    k.energyJ = v.numOr("energyJ");
    k.peakWindowDynW = v.numOr("peakWindowDynW");
    k.replayed = v.u64Or("replayed") != 0;
    if (const auto *pv = v.find("profile"))
        k.profile = parseProfile(*pv);
    return k;
}

NetRun
parseNetRun(const Json::Value &v)
{
    NetRun run;
    run.netName = v.strOr("netName");
    run.deviceBytes = v.u64Or("deviceBytes");
    if (const auto *t = v.find("totals"))
        run.totals = parseStatSet(*t);
    run.totalTimeSec = v.numOr("totalTimeSec");
    run.totalEnergyJ = v.numOr("totalEnergyJ");
    run.peakPowerW = v.numOr("peakPowerW");
    run.maxRegsPerThread = static_cast<uint32_t>(v.u64Or("maxRegsPerThread"));
    run.maxLiveRegs = static_cast<uint32_t>(v.u64Or("maxLiveRegs"));
    run.maxResidentWarps =
        static_cast<uint32_t>(v.u64Or("maxResidentWarps"));
    run.checkFailures = v.u64Or("checkFailures");
    run.estimated = v.u64Or("estimated") != 0;
    run.estErrP50 = v.numOr("estErrP50");
    run.estErrP95 = v.numOr("estErrP95");
    if (const auto *layers = v.find("layers")) {
        for (const auto &lv : layers->arr) {
            LayerRun l;
            l.layerIndex =
                static_cast<int>(static_cast<int64_t>(lv.numOr("layerIndex")));
            l.name = lv.strOr("name");
            l.figType = lv.strOr("figType");
            if (const auto *ks = lv.find("kernels")) {
                for (const auto &kv : ks->arr)
                    l.kernels.push_back(parseKernelStats(kv));
            }
            run.layers.push_back(std::move(l));
        }
    }
    return run;
}

} // namespace

NetRun
netRunFromJson(const json::Reader::Value &v)
{
    return parseNetRun(v);
}

std::string
serializeNetRun(const NetRun &run)
{
    std::string out;
    out.reserve(4096);
    ObjWriter o(out);
    o.str("netName", run.netName);
    o.u64("deviceBytes", run.deviceBytes);
    o.key("totals");
    appendStatSet(out, run.totals);
    o.num("totalTimeSec", run.totalTimeSec);
    o.num("totalEnergyJ", run.totalEnergyJ);
    o.num("peakPowerW", run.peakPowerW);
    o.u64("maxRegsPerThread", run.maxRegsPerThread);
    o.u64("maxLiveRegs", run.maxLiveRegs);
    o.u64("maxResidentWarps", run.maxResidentWarps);
    o.u64("checkFailures", run.checkFailures);
    // Estimate-tier marker + error bounds; elided entirely for
    // simulated runs so their serialized form is byte-identical to
    // what it was before the estimate tier existed.
    if (run.estimated) {
        o.u64("estimated", 1);
        o.num("estErrP50", run.estErrP50);
        o.num("estErrP95", run.estErrP95);
    }
    o.key("layers");
    out += '[';
    for (size_t i = 0; i < run.layers.size(); i++) {
        if (i)
            out += ',';
        appendLayerRun(out, run.layers[i]);
    }
    out += ']';
    o.close();
    return out;
}

bool
parseNetRunJson(const std::string &text, NetRun &out)
{
    try {
        Json parser(text);
        const Json::Value doc = parser.parse();
        if (doc.kind != Json::Value::Kind::Obj)
            return false;
        out = parseNetRun(doc);
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

std::map<std::string, NetRun>
loadRunCache(const std::string &path)
{
    std::map<std::string, NetRun> out;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return out;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    // Walk the document token by token instead of parsing it wholesale:
    // a cache file with a truncated or corrupt tail (interrupted write,
    // disk full) then still yields every entry before the damage instead
    // of being discarded outright.
    Json p(text);
    bool inRuns = false;
    try {
        p.expect('{');
        int version = -1, statsVersion = 0;
        for (;;) {
            const std::string key = p.string();
            p.expect(':');
            if (key == "runs")
                break;
            const Json::Value v = p.value();
            if (key == "version")
                version = static_cast<int>(v.num);
            else if (key == "statsVersion")
                statsVersion = static_cast<int>(v.num);
            const char n = p.next();
            if (n == '}')
                return out;   // document ended without a runs section
            if (n != ',')
                throw std::runtime_error("json: expected , or }");
        }
        // A version mismatch discards the file wholesale (and silently),
        // exactly as before: mixing statistics from two simulator
        // revisions is worse than re-simulating.
        if (version != kRunCacheVersion || statsVersion != kSimStatsVersion)
            return out;

        inRuns = true;
        p.expect('{');
        if (p.peek() == '}')
            return out;
        for (;;) {
            const std::string key = p.string();
            p.expect(':');
            const Json::Value v = p.value();
            out.emplace(key, parseNetRun(v));
            const char n = p.next();
            if (n == '}')
                break;
            if (n != ',')
                throw std::runtime_error("json: expected , or }");
        }
        // Trailing bytes after the runs object carry no entries; damage
        // there cannot invalidate what was parsed.
    } catch (const std::exception &) {
        if (!inRuns) {
            // Damage before the version fields: nothing is trustworthy.
            out.clear();
            return out;
        }
        warn("run cache '%s': corrupt tail discarded, %zu entr%s salvaged",
             path.c_str(), out.size(), out.size() == 1 ? "y" : "ies");
    }
    return out;
}

bool
saveRunCache(const std::string &path,
             const std::map<std::string, NetRun> &runs, uint64_t max_bytes)
{
    std::string out;
    out.reserve(runs.size() * 4096 + 64);
    out += "{\"version\":";
    out += std::to_string(kRunCacheVersion);
    out += ",\"statsVersion\":";
    out += std::to_string(kSimStatsVersion);
    out += ",\"runs\":{";
    bool first = true;
    size_t skipped = 0;
    for (const auto &[key, run] : runs) {
        std::string entry;
        if (!first)
            entry += ',';
        appendEscaped(entry, key);
        entry += ':';
        entry += serializeNetRun(run);
        // +3 for the closing "}}\n": the capped file is still complete,
        // valid JSON — just with fewer entries.
        if (max_bytes > 0 && out.size() + entry.size() + 3 > max_bytes) {
            skipped++;
            continue;
        }
        first = false;
        out += entry;
    }
    out += "}}\n";
    if (skipped > 0) {
        warn("run cache '%s': size cap %llu bytes reached, %zu of %zu "
             "entries not spilled",
             path.c_str(), static_cast<unsigned long long>(max_bytes),
             skipped, runs.size());
    }

    const std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            return false;
        f << out;
        if (!f)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

} // namespace tango::rt
