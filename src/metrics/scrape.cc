#include "metrics/scrape.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace tango::metrics {

std::string
Sample::label(const std::string &key) const
{
    for (const auto &[k, v] : labels) {
        if (k == key)
            return v;
    }
    return std::string();
}

namespace {

bool
parseLine(const std::string &line, Sample &out, std::string *err)
{
    const auto fail = [&](const char *why) {
        if (err)
            *err = std::string(why) + ": '" + line + "'";
        return false;
    };

    size_t pos = 0;
    const auto nameEnd = line.find_first_of("{ \t", pos);
    if (nameEnd == std::string::npos || nameEnd == 0)
        return fail("missing sample name");
    Sample s;
    s.name = line.substr(0, nameEnd);
    pos = nameEnd;

    if (line[pos] == '{') {
        pos++;
        while (pos < line.size() && line[pos] != '}') {
            const size_t eq = line.find('=', pos);
            if (eq == std::string::npos || line.size() <= eq + 1 ||
                line[eq + 1] != '"')
                return fail("malformed label");
            std::string key = line.substr(pos, eq - pos);
            std::string value;
            size_t i = eq + 2;
            for (; i < line.size() && line[i] != '"'; i++) {
                char c = line[i];
                if (c == '\\' && i + 1 < line.size())
                    c = line[++i];
                value += c;
            }
            if (i >= line.size())
                return fail("unterminated label value");
            s.labels.emplace_back(std::move(key), std::move(value));
            pos = i + 1;
            if (pos < line.size() && line[pos] == ',')
                pos++;
        }
        if (pos >= line.size() || line[pos] != '}')
            return fail("unterminated label set");
        pos++;
    }

    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t'))
        pos++;
    if (pos >= line.size())
        return fail("missing sample value");
    char *end = nullptr;
    const std::string value = line.substr(pos);
    if (value == "+Inf") {
        s.value = std::numeric_limits<double>::infinity();
    } else {
        s.value = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || (end && *end != '\0'))
            return fail("malformed sample value");
    }
    out = std::move(s);
    return true;
}

} // namespace

bool
Scrape::parse(const std::string &text, Scrape &out, std::string *err)
{
    Scrape scr;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line[0] == '#')
            continue;
        Sample s;
        if (!parseLine(line, s, err))
            return false;
        scr.samples_.push_back(std::move(s));
    }
    out = std::move(scr);
    return true;
}

double
Scrape::sum(const std::string &name) const
{
    double total = 0.0;
    for (const Sample &s : samples_) {
        if (s.name == name)
            total += s.value;
    }
    return total;
}

const Sample *
Scrape::find(const std::string &name, const std::string &key,
             const std::string &value) const
{
    for (const Sample &s : samples_) {
        if (s.name != name)
            continue;
        if (key.empty() || s.label(key) == value)
            return &s;
    }
    return nullptr;
}

bool
Scrape::histogram(const std::string &name, HistogramSnapshot &out) const
{
    // Cumulative buckets back to per-bucket counts: samples arrive in
    // ascending-le order (renderPrometheus emits them that way), each
    // le being the exact upper bound of its source bucket.
    HistogramSnapshot s;
    s.buckets.assign(Buckets::kCount, 0);
    bool any = false;
    double prevCum = 0.0;
    for (const Sample &sample : samples_) {
        if (sample.name == name + "_sum") {
            s.sum = static_cast<uint64_t>(sample.value);
            continue;
        }
        if (sample.name != name + "_bucket")
            continue;
        const std::string le = sample.label("le");
        if (le == "+Inf")
            continue;   // equals _count; per-bucket info already seen
        any = true;
        const uint64_t upper =
            std::strtoull(le.c_str(), nullptr, 10);
        const uint64_t delta =
            static_cast<uint64_t>(sample.value - prevCum);
        s.buckets[Buckets::index(upper)] += delta;
        prevCum = sample.value;
    }
    if (!any)
        return false;
    out = std::move(s);
    return true;
}

} // namespace tango::metrics
