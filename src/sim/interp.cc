#include "sim/interp.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "sim/digest.hh"

namespace tango::sim {

namespace {

/** splitmix64 finalizer, used to derive the per-lane digest salts. */
constexpr uint64_t
splitmix64(uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

constexpr std::array<uint64_t, warpSize>
makeLaneSalts()
{
    std::array<uint64_t, warpSize> s{};
    for (uint32_t i = 0; i < warpSize; i++)
        s[i] = splitmix64(i);
    return s;
}

/** Distinct salt per lane so the address digest is sensitive to which
 *  lane issued which address, not just the address multiset. */
constexpr std::array<uint64_t, warpSize> kLaneSalt = makeLaneSalts();

/** All 32 lanes active. */
constexpr Mask kFullMask = 0xffffffffu;

/**
 * Apply @p f to every active lane of @p exec in ascending lane order.
 *
 * Full warps — the overwhelmingly common case in the dense kernels — take
 * a plain counted loop the compiler can unroll and vectorize; sparse
 * masks fall back to bit iteration.  Identical visit order either way.
 */
template <typename F>
inline void
forLanes(Mask exec, F &&f)
{
    if (exec == kFullMask) {
        for (uint32_t lane = 0; lane < warpSize; lane++)
            f(lane);
    } else {
        for (Mask m = exec; m; m &= m - 1)
            f(static_cast<uint32_t>(std::countr_zero(m)));
    }
}

inline float
asF32(uint32_t u)
{
    return std::bit_cast<float>(u);
}

inline uint32_t
asU32(float f)
{
    return std::bit_cast<uint32_t>(f);
}

/** Canonicalize a 32-bit value to its storage form for narrow types. */
inline uint32_t
canonical(DType t, uint32_t v)
{
    switch (t) {
      case DType::U16:
        return v & 0xffffu;
      case DType::S16:
        return static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int16_t>(v & 0xffffu)));
      default:
        return v;
    }
}

inline bool
isSigned(DType t)
{
    return t == DType::S32 || t == DType::S16;
}

inline bool
isFloat(DType t)
{
    return t == DType::F32;
}

/** Evaluate a comparison on two values of type @p t. */
bool
compare(Cmp c, DType t, uint32_t a, uint32_t b)
{
    if (isFloat(t)) {
        float x = asF32(a), y = asF32(b);
        switch (c) {
          case Cmp::Eq: return x == y;
          case Cmp::Ne: return x != y;
          case Cmp::Lt: return x < y;
          case Cmp::Le: return x <= y;
          case Cmp::Gt: return x > y;
          case Cmp::Ge: return x >= y;
        }
    } else if (isSigned(t)) {
        auto x = static_cast<int32_t>(a), y = static_cast<int32_t>(b);
        switch (c) {
          case Cmp::Eq: return x == y;
          case Cmp::Ne: return x != y;
          case Cmp::Lt: return x < y;
          case Cmp::Le: return x <= y;
          case Cmp::Gt: return x > y;
          case Cmp::Ge: return x >= y;
        }
    } else {
        switch (c) {
          case Cmp::Eq: return a == b;
          case Cmp::Ne: return a != b;
          case Cmp::Lt: return a < b;
          case Cmp::Le: return a <= b;
          case Cmp::Gt: return a > b;
          case Cmp::Ge: return a >= b;
        }
    }
    return false;
}

/**
 * Full-warp f32 fused multiply-add over three register rows (the RNN cell
 * kernels' hottest instruction).
 *
 * Multi-versioned: on hosts with FMA3 the "fma" clone vectorizes to packed
 * vfmadd; the default clone lowers to libm's fmaf.  Both are IEEE
 * correctly rounded, so every clone produces bit-identical results and
 * simulated values do not depend on the host ISA.  The destination row may
 * alias a source row (accumulate form "mad d, a, b, d"), which is safe:
 * the op is elementwise over the same index.
 *
 * Not multi-versioned under ThreadSanitizer: target_clones emits an ifunc
 * whose instrumented resolver runs at relocation time, before the tsan
 * runtime has set up its thread state — every binary linking this TU then
 * segfaults in __tsan_func_entry before main.  The clones are
 * bit-identical anyway, so sanitized builds just take the default path.
 */
#if !defined(__SANITIZE_THREAD__)
__attribute__((target_clones("default", "fma")))
#endif
void
madWarpF32(uint32_t *dp, const uint32_t *a, const uint32_t *b,
           const uint32_t *c)
{
    for (uint32_t l = 0; l < warpSize; l++)
        dp[l] =
            asU32(__builtin_fmaf(asF32(a[l]), asF32(b[l]), asF32(c[l])));
}

} // namespace

uint32_t
coalesceSegments(const uint32_t addrs[warpSize], Mask exec,
                 uint32_t out[warpSize])
{
    uint32_t n = 0;
    uint32_t last = 0;
    bool haveLast = false;
    for (Mask m = exec; m; m &= m - 1) {
        const uint32_t lane = static_cast<uint32_t>(std::countr_zero(m));
        const uint32_t seg = addrs[lane] & ~127u;
        if (haveLast && seg == last)
            continue;
        bool found = false;
        for (uint32_t s = 0; s < n; s++) {
            if (out[s] == seg) {
                found = true;
                break;
            }
        }
        if (!found)
            out[n++] = seg;
        last = seg;
        haveLast = true;
    }
    return n;
}

WarpExec::WarpExec(const KernelLaunch &launch, Dim3 cta_id,
                   uint32_t warp_in_cta, DeviceMemory &gmem,
                   std::vector<uint8_t> &smem, const DecodedProgram *dec)
    : launch_(launch), prog_(*launch.program), dec_(dec), gmem_(gmem),
      smem_(smem), ctaId_(cta_id), warpInCta_(warp_in_cta)
{
    if (!dec_) {
        ownDec_ = std::make_unique<DecodedProgram>(prog_);
        dec_ = ownDec_.get();
    }
    regs_.assign(size_t(prog_.numRegs) * warpSize, 0);
    preds_.assign(std::max<uint32_t>(prog_.numPreds, 1), 0);

    const Dim3 &b = launch_.block;
    const uint32_t threads = static_cast<uint32_t>(b.count());
    active_ = 0;
    for (uint32_t lane = 0; lane < warpSize; lane++) {
        const uint32_t linear = warp_in_cta * warpSize + lane;
        if (linear >= threads) {
            tidX_[lane] = tidY_[lane] = tidZ_[lane] = 0;
            continue;
        }
        tidX_[lane] = linear % b.x;
        tidY_[lane] = (linear / b.x) % b.y;
        tidZ_[lane] = linear / (b.x * b.y);
        active_ |= (1u << lane);
    }
    done_ = (active_ == 0) || prog_.code.empty();
}

uint32_t
WarpExec::readReg(uint32_t lane, uint8_t r) const
{
    return regs_[size_t(r) * warpSize + lane];
}

void
WarpExec::writeReg(uint32_t lane, uint8_t r, uint32_t v)
{
    regs_[size_t(r) * warpSize + lane] = v;
}

uint32_t
WarpExec::operand(uint32_t lane, const Instr &ins, int i) const
{
    return ins.src[i] == Instr::immReg ? ins.imm : readReg(lane, ins.src[i]);
}

void
WarpExec::resolve()
{
    // Lanes that executed Exit are recorded by clearing them from every
    // mask as entries are popped; active_ lanes are always live.
    while (!done_) {
        if (rpc_ >= 0 && pc_ == static_cast<uint32_t>(rpc_)) {
            TANGO_ASSERT(!stack_.empty(), "reconvergence with empty stack");
            StackEntry e = stack_.back();
            stack_.pop_back();
            pc_ = e.pc;
            rpc_ = e.rpc;
            active_ = e.mask;
            continue;
        }
        if (active_ == 0) {
            if (stack_.empty()) {
                done_ = true;
                break;
            }
            StackEntry e = stack_.back();
            stack_.pop_back();
            pc_ = e.pc;
            rpc_ = e.rpc;
            active_ = e.mask;
            continue;
        }
        break;
    }
}

const Instr &
WarpExec::peek()
{
    resolveFast();
    TANGO_ASSERT(!done_, "peek on retired warp");
    return prog_.code[pc_];
}

const DecodedInstr &
WarpExec::peekDecoded()
{
    resolveFast();
    TANGO_ASSERT(!done_, "peek on retired warp");
    return (*dec_)[pc_];
}

uint32_t
WarpExec::pc()
{
    resolveFast();
    return pc_;
}

void
WarpExec::foldAddrs(Mask exec, const uint32_t addrs[warpSize])
{
    // Lane-salted combine: each active lane's address hashes
    // independently (no loop-carried multiply chain) and the products
    // XOR-merge, so the fold costs one round of ILP-friendly multiplies
    // instead of a 32-deep serial FNV chain.
    uint64_t acc = 0;
    forLanes(exec, [&](uint32_t lane) {
        acc ^= (uint64_t(addrs[lane]) ^ kLaneSalt[lane]) *
               0x9e3779b97f4a7c15ull;
    });
    digest::mix(streamHash_, acc);
}

Step
WarpExec::step()
{
    return stepT<true>();
}

WarpExec::StepLite
WarpExec::runFunctionalSegment()
{
    return stepT<false>();
}

template <bool Timing>
std::conditional_t<Timing, Step, WarpExec::StepLite>
WarpExec::stepT()
{
  // The functional instantiation batches: it loops here until the warp
  // retires or consumes a Bar, paying the call and frame setup once per
  // barrier-to-barrier segment instead of once per instruction.
  for (;;) {
    resolveFast();
    std::conditional_t<Timing, Step, StepLite> st;
    if (done_) {
        st.warpDone = true;
        return st;
    }
    const Instr &ins = prog_.code[pc_];
    const DecodedInstr &dec = (*dec_)[pc_];
    st.op = ins.op;
    if constexpr (Timing) {
        st.type = ins.type;
        st.unit = dec.unit;
        st.numSrcRegs = dec.numSrcRegs;
        st.writesReg = dec.writesReg;
    }

    // Guard predicate (for Bra the predicate is the branch condition and is
    // handled below instead).
    Mask exec = active_;
    if (ins.pred != noPred && ins.op != Op::Bra) {
        const Mask pv = preds_[ins.pred];
        exec &= ins.predNeg ? ~pv : pv;
    }
    if constexpr (Timing)
        st.activeCount = static_cast<uint32_t>(std::popcount(exec));

    // Fold the issue point: pc pins the static instruction (opcode, unit,
    // type, memory space), the mask pins which lanes executed it.
    if (hashing_)
        digest::mix(streamHash_, (uint64_t(pc_) << 32) | exec);

    uint32_t next_pc = pc_ + 1;

    switch (ins.op) {
      case Op::Nop:
      case Op::Retp:
      case Op::Callp:
      case Op::Bar:
        break;

      case Op::Ssy:
        stack_.push_back({static_cast<uint32_t>(ins.target), rpc_, active_,
                          true});
        rpc_ = ins.target;
        break;

      case Op::Exit: {
        // Exec-masked lanes retire.  Remaining lanes (if any) continue; if
        // none remain the resolver pops pending paths or retires the warp.
        const Mask dying = exec;
        active_ &= ~dying;
        for (auto &e : stack_)
            e.mask &= ~dying;
        // Surviving guarded-off lanes fall through; if none survive the
        // resolver pops pending paths or retires the warp.
        break;
      }

      case Op::Bra: {
        Mask taken = active_;
        if (ins.pred != noPred) {
            const Mask pv = preds_[ins.pred];
            taken &= ins.predNeg ? ~pv : pv;
        }
        const Mask not_taken = active_ & ~taken;
        if constexpr (Timing)
            st.controlTransfer = true;
        if (taken == active_) {
            next_pc = static_cast<uint32_t>(ins.target);
        } else if (taken == 0) {
            next_pc = pc_ + 1;
            if constexpr (Timing)
                st.controlTransfer = false;
        } else {
            // Divergence: continue on the taken path, queue the rest.
            stack_.push_back({pc_ + 1, rpc_, not_taken, false});
            active_ = taken;
            next_pc = static_cast<uint32_t>(ins.target);
        }
        if constexpr (Timing)
            st.activeCount = static_cast<uint32_t>(std::popcount(active_));
        // Fold the outcome too: the continuation pc and surviving mask pin
        // the taken set even when a guard at the target would mask it.
        if (hashing_)
            digest::mix(streamHash_, (uint64_t(next_pc) << 32) | active_);
        break;
      }

      case Op::Mov: {
        if (ins.sreg != SReg::None) {
            forLanes(exec, [&](uint32_t lane) {
                uint32_t v = 0;
                switch (ins.sreg) {
                  case SReg::TidX: v = tidX_[lane]; break;
                  case SReg::TidY: v = tidY_[lane]; break;
                  case SReg::TidZ: v = tidZ_[lane]; break;
                  case SReg::CtaIdX: v = ctaId_.x; break;
                  case SReg::CtaIdY: v = ctaId_.y; break;
                  case SReg::CtaIdZ: v = ctaId_.z; break;
                  case SReg::NTidX: v = launch_.block.x; break;
                  case SReg::NTidY: v = launch_.block.y; break;
                  case SReg::NTidZ: v = launch_.block.z; break;
                  case SReg::LaneId: v = lane; break;
                  case SReg::WarpId: v = warpInCta_; break;
                  case SReg::None: break;
                }
                writeReg(lane, ins.dst, v);
            });
        } else {
            forLanes(exec, [&](uint32_t lane) {
                writeReg(lane, ins.dst, operand(lane, ins, 0));
            });
        }
        break;
      }

      case Op::Ld: {
        if constexpr (Timing) {
            st.isMem = true;
            st.space = ins.space;
        }
        const uint32_t bytes = dtypeBytes(ins.type);
        uint32_t addrs[warpSize];
        const uint32_t *a0 = ins.src[0] == Instr::immReg
                                 ? nullptr
                                 : &regs_[size_t(ins.src[0]) * warpSize];
        const uint32_t imm = ins.imm;
        if (bytes == 4) {
            // Word loads (f32/u32/s32) dominate; the space dispatch and
            // bounds limit hoist out of the lane loop and no narrowing is
            // possible, so each lane is one checked 32-bit copy.
            const uint8_t *base = nullptr;
            uint64_t limit = 0;
            switch (ins.space) {
              case Space::Global:
                base = gmem_.data();
                limit = gmem_.backed();
                break;
              case Space::Shared:
                base = smem_.data();
                limit = smem_.size();
                break;
              case Space::Const:
                base = launch_.constData.data();
                limit = launch_.constData.size();
                break;
              case Space::Param:
                base = reinterpret_cast<const uint8_t *>(
                    launch_.params.data());
                limit = launch_.params.size() * 4;
                break;
            }
            uint32_t *dp = &regs_[size_t(ins.dst) * warpSize];
            // Two passes so the bounds check hoists out of the copy loop:
            // addresses and their max first (vectorizable), one assert,
            // then unchecked 32-bit copies.
            uint32_t maxAddr = 0;
            forLanes(exec, [&](uint32_t lane) {
                const uint32_t addr = (a0 ? a0[lane] : 0) + imm;
                addrs[lane] = addr;
                maxAddr = std::max(maxAddr, addr);
            });
            TANGO_ASSERT(exec == 0 || uint64_t(maxAddr) + 4 <= limit,
                         "load out of range");
            forLanes(exec, [&](uint32_t lane) {
                uint32_t raw;
                std::memcpy(&raw, base + addrs[lane], 4);
                dp[lane] = raw;
            });
        } else {
            for (Mask m = exec; m; m &= m - 1) {
                const auto lane =
                    static_cast<uint32_t>(std::countr_zero(m));
                // Immediate-only addressing: base is 0, offset is the imm.
                const uint32_t addr = (a0 ? a0[lane] : 0) + imm;
                addrs[lane] = addr;
                uint32_t raw = 0;
                switch (ins.space) {
                  case Space::Global:
                    TANGO_ASSERT(uint64_t(addr) + bytes <= gmem_.backed(),
                                 "global load out of range");
                    std::memcpy(&raw, gmem_.data() + addr, bytes);
                    break;
                  case Space::Shared:
                    TANGO_ASSERT(uint64_t(addr) + bytes <= smem_.size(),
                                 "shared load out of range");
                    std::memcpy(&raw, smem_.data() + addr, bytes);
                    break;
                  case Space::Const:
                    TANGO_ASSERT(uint64_t(addr) + bytes <=
                                     launch_.constData.size(),
                                 "const load out of range");
                    std::memcpy(&raw, launch_.constData.data() + addr,
                                bytes);
                    break;
                  case Space::Param:
                    TANGO_ASSERT(uint64_t(addr) + bytes <=
                                     launch_.params.size() * 4,
                                 "param load out of range");
                    std::memcpy(&raw,
                                reinterpret_cast<const uint8_t *>(
                                    launch_.params.data()) + addr,
                                bytes);
                    break;
                }
                writeReg(lane, ins.dst, canonical(ins.type, raw));
            }
        }
        if (hashing_)
            foldAddrs(exec, addrs);
        // Access shaping for the memory model (timing runs only).
        if constexpr (Timing) {
            if (ins.space == Space::Global) {
                st.numSegments = coalesceSegments(addrs, exec, st.segments);
            } else if (ins.space == Space::Shared) {
                // Bank-conflict count.  A touched-bank mask replaces the
                // "count == 0" first-touch test so the per-bank arrays
                // need no zeroing; conflict counts are unchanged (distinct
                // addresses hitting one bank serialize, broadcasts of one
                // address don't).
                uint32_t perBank[warpSize];
                uint32_t bankAddr[warpSize];
                Mask touched = 0;
                uint32_t maxSer = 1;
                for (Mask m = exec; m; m &= m - 1) {
                    const auto lane =
                        static_cast<uint32_t>(std::countr_zero(m));
                    const uint32_t bank = (addrs[lane] / 4) % warpSize;
                    if (!(touched & (1u << bank)) ||
                        bankAddr[bank] != addrs[lane]) {
                        perBank[bank] =
                            (touched & (1u << bank)) ? perBank[bank] + 1
                                                     : 1;
                        touched |= 1u << bank;
                        bankAddr[bank] = addrs[lane];
                    }
                    if (perBank[bank] > maxSer)
                        maxSer = perBank[bank];
                }
                st.sharedSerialization = maxSer;
            } else if (ins.space == Space::Const) {
                uint32_t first = 0;
                bool haveFirst = false;
                for (Mask m = exec; m; m &= m - 1) {
                    const auto lane =
                        static_cast<uint32_t>(std::countr_zero(m));
                    if (!haveFirst) {
                        first = addrs[lane];
                        haveFirst = true;
                    } else if (addrs[lane] != first) {
                        st.constUniform = false;
                        break;
                    }
                }
                // The constant-cache model probes lane 0's address.
                st.segments[0] = first;
            }
        }
        break;
      }

      case Op::St: {
        if constexpr (Timing) {
            st.isMem = true;
            st.isStore = true;
            st.space = ins.space;
        }
        const uint32_t bytes = dtypeBytes(ins.type);
        uint32_t addrs[warpSize];
        const uint32_t *a0 = ins.src[0] == Instr::immReg
                                 ? nullptr
                                 : &regs_[size_t(ins.src[0]) * warpSize];
        const uint32_t *v1 = ins.src[1] == Instr::immReg
                                 ? nullptr
                                 : &regs_[size_t(ins.src[1]) * warpSize];
        const uint32_t imm = ins.imm;
        if (bytes == 4 &&
            (ins.space == Space::Global || ins.space == Space::Shared)) {
            // Word stores: same hoisting as the load fast path above.
            uint8_t *base;
            uint64_t limit;
            if (ins.space == Space::Global) {
                base = gmem_.data();
                limit = gmem_.backed();
            } else {
                base = smem_.data();
                limit = smem_.size();
            }
            uint32_t maxAddr = 0;
            forLanes(exec, [&](uint32_t lane) {
                const uint32_t addr = (a0 ? a0[lane] : 0) + imm;
                addrs[lane] = addr;
                maxAddr = std::max(maxAddr, addr);
            });
            TANGO_ASSERT(exec == 0 || uint64_t(maxAddr) + 4 <= limit,
                         "store out of range");
            forLanes(exec, [&](uint32_t lane) {
                const uint32_t val = v1 ? v1[lane] : imm;
                std::memcpy(base + addrs[lane], &val, 4);
            });
        } else {
            for (Mask m = exec; m; m &= m - 1) {
                const auto lane =
                    static_cast<uint32_t>(std::countr_zero(m));
                const uint32_t addr = (a0 ? a0[lane] : 0) + imm;
                addrs[lane] = addr;
                const uint32_t val = v1 ? v1[lane] : imm;
                switch (ins.space) {
                  case Space::Global:
                    TANGO_ASSERT(uint64_t(addr) + bytes <= gmem_.backed(),
                                 "global store out of range");
                    std::memcpy(gmem_.data() + addr, &val, bytes);
                    break;
                  case Space::Shared:
                    TANGO_ASSERT(uint64_t(addr) + bytes <= smem_.size(),
                                 "shared store out of range");
                    std::memcpy(smem_.data() + addr, &val, bytes);
                    break;
                  default:
                    panic("store to read-only space");
                }
            }
        }
        if (hashing_)
            foldAddrs(exec, addrs);
        if constexpr (Timing) {
            if (ins.space == Space::Global)
                st.numSegments = coalesceSegments(addrs, exec, st.segments);
        }
        break;
      }

      case Op::Set: {
        // Operand rows hoisted out of the lane loop (same trick as the
        // arithmetic path below); values match operand() lane for lane.
        const uint32_t imm = ins.imm;
        const uint32_t *s0 = ins.src[0] == Instr::immReg
                                 ? nullptr
                                 : &regs_[size_t(ins.src[0]) * warpSize];
        const uint32_t *s1 = ins.src[1] == Instr::immReg
                                 ? nullptr
                                 : &regs_[size_t(ins.src[1]) * warpSize];
        const Cmp cmp = ins.cmp;
        const DType t = ins.type;
        // The (type class, comparison) dispatch hoists out of the lane
        // loop: runSet instantiates one tight loop per concrete
        // comparator, matching compare() lane for lane (narrow types are
        // stored canonicalized, so 32-bit signed/unsigned compares are
        // exact for them too — the same equivalence compare() relies on).
        const auto runSet = [&](auto cmpf) {
            if (ins.dstIsPred) {
                Mask result = preds_[ins.dst] & ~exec;
                forLanes(exec, [&](uint32_t lane) {
                    if (cmpf(s0 ? s0[lane] : imm, s1 ? s1[lane] : imm))
                        result |= (1u << lane);
                });
                preds_[ins.dst] = result;
            } else {
                uint32_t *dp = &regs_[size_t(ins.dst) * warpSize];
                forLanes(exec, [&](uint32_t lane) {
                    dp[lane] =
                        cmpf(s0 ? s0[lane] : imm, s1 ? s1[lane] : imm)
                            ? 1u
                            : 0u;
                });
            }
        };
        const auto dispatchCmp = [&](auto conv) {
            switch (cmp) {
              case Cmp::Eq:
                runSet([conv](uint32_t a, uint32_t b) {
                    return conv(a) == conv(b);
                });
                break;
              case Cmp::Ne:
                runSet([conv](uint32_t a, uint32_t b) {
                    return conv(a) != conv(b);
                });
                break;
              case Cmp::Lt:
                runSet([conv](uint32_t a, uint32_t b) {
                    return conv(a) < conv(b);
                });
                break;
              case Cmp::Le:
                runSet([conv](uint32_t a, uint32_t b) {
                    return conv(a) <= conv(b);
                });
                break;
              case Cmp::Gt:
                runSet([conv](uint32_t a, uint32_t b) {
                    return conv(a) > conv(b);
                });
                break;
              case Cmp::Ge:
                runSet([conv](uint32_t a, uint32_t b) {
                    return conv(a) >= conv(b);
                });
                break;
            }
        };
        if (isFloat(t)) {
            dispatchCmp([](uint32_t v) { return asF32(v); });
        } else if (isSigned(t)) {
            dispatchCmp(
                [](uint32_t v) { return static_cast<int32_t>(v); });
        } else {
            dispatchCmp([](uint32_t v) { return v; });
        }
        break;
      }

      case Op::Selp: {
        const Mask pv = preds_[ins.src[2]];
        for (Mask m = exec; m; m &= m - 1) {
            const auto lane = static_cast<uint32_t>(std::countr_zero(m));
            const bool take = (pv >> lane) & 1u;
            writeReg(lane, ins.dst,
                     take ? operand(lane, ins, 0) : operand(lane, ins, 1));
        }
        break;
      }

      default: {
        // Arithmetic / logic with up to three operands.  Operand register
        // rows and the opcode dispatch are hoisted out of the lane loop;
        // the hottest opcodes get dedicated loops and everything else falls
        // through to the generic per-lane evaluator below.  Results are
        // identical lane for lane.
        const int nsrc = dec.nsrc;
        const uint32_t imm = ins.imm;
        const uint32_t *s0 = ins.src[0] == Instr::immReg
                                 ? nullptr
                                 : &regs_[size_t(ins.src[0]) * warpSize];
        const uint32_t *s1 = nsrc > 1 && ins.src[1] != Instr::immReg
                                 ? &regs_[size_t(ins.src[1]) * warpSize]
                                 : nullptr;
        const uint32_t *s2 = nsrc > 2 && ins.src[2] != Instr::immReg
                                 ? &regs_[size_t(ins.src[2]) * warpSize]
                                 : nullptr;
        const uint32_t bDef =
            nsrc > 1 && ins.src[1] == Instr::immReg ? imm : 0;
        const uint32_t cDef =
            nsrc > 2 && ins.src[2] == Instr::immReg ? imm : 0;
        uint32_t *dp = &regs_[size_t(ins.dst) * warpSize];
        const auto srcA = [&](uint32_t l) { return s0 ? s0[l] : imm; };
        const auto srcB = [&](uint32_t l) { return s1 ? s1[l] : bDef; };
        const auto srcC = [&](uint32_t l) { return s2 ? s2[l] : cDef; };
        const bool f32 = isFloat(ins.type);
        const bool narrow =
            ins.type == DType::U16 || ins.type == DType::S16;
        const auto wr = [&](uint32_t l, uint32_t r) {
            dp[l] = narrow ? canonical(ins.type, r) : r;
        };
        bool handled = true;
        switch (ins.op) {
          case Op::Mad:
            if (f32) {
                if (exec == kFullMask && s0 && s1 && s2) {
                    madWarpF32(dp, s0, s1, s2);
                } else {
                    forLanes(exec, [&](uint32_t l) {
                        dp[l] = asU32(std::fmaf(asF32(srcA(l)),
                                                asF32(srcB(l)),
                                                asF32(srcC(l))));
                    });
                }
            } else {
                forLanes(exec, [&](uint32_t l) {
                    wr(l, srcA(l) * srcB(l) + srcC(l));
                });
            }
            break;
          case Op::Mad24:
            if (f32) {      // invalid; the generic path reports it
                handled = false;
                break;
            }
            forLanes(exec, [&](uint32_t l) {
                wr(l, (srcA(l) & 0xffffffu) * (srcB(l) & 0xffffffu) +
                          srcC(l));
            });
            break;
          case Op::Add:
            if (f32) {
                forLanes(exec, [&](uint32_t l) {
                    dp[l] = asU32(asF32(srcA(l)) + asF32(srcB(l)));
                });
            } else {
                forLanes(exec, [&](uint32_t l) {
                    wr(l, srcA(l) + srcB(l));
                });
            }
            break;
          case Op::Sub:
            if (f32) {
                forLanes(exec, [&](uint32_t l) {
                    dp[l] = asU32(asF32(srcA(l)) - asF32(srcB(l)));
                });
            } else {
                forLanes(exec, [&](uint32_t l) {
                    wr(l, srcA(l) - srcB(l));
                });
            }
            break;
          case Op::Mul:
            if (f32) {
                forLanes(exec, [&](uint32_t l) {
                    dp[l] = asU32(asF32(srcA(l)) * asF32(srcB(l)));
                });
            } else {
                forLanes(exec, [&](uint32_t l) {
                    wr(l, srcA(l) * srcB(l));
                });
            }
            break;
          case Op::Min:
            if (f32) {
                forLanes(exec, [&](uint32_t l) {
                    dp[l] = asU32(std::fmin(asF32(srcA(l)), asF32(srcB(l))));
                });
            } else if (isSigned(ins.type)) {
                forLanes(exec, [&](uint32_t l) {
                    wr(l, static_cast<uint32_t>(
                              std::min(static_cast<int32_t>(srcA(l)),
                                       static_cast<int32_t>(srcB(l)))));
                });
            } else {
                forLanes(exec, [&](uint32_t l) {
                    wr(l, std::min(srcA(l), srcB(l)));
                });
            }
            break;
          case Op::Max:
            if (f32) {
                forLanes(exec, [&](uint32_t l) {
                    dp[l] = asU32(std::fmax(asF32(srcA(l)), asF32(srcB(l))));
                });
            } else if (isSigned(ins.type)) {
                forLanes(exec, [&](uint32_t l) {
                    wr(l, static_cast<uint32_t>(
                              std::max(static_cast<int32_t>(srcA(l)),
                                       static_cast<int32_t>(srcB(l)))));
                });
            } else {
                forLanes(exec, [&](uint32_t l) {
                    wr(l, std::max(srcA(l), srcB(l)));
                });
            }
            break;
          case Op::Shl:
            if (f32) {
                handled = false;
                break;
            }
            forLanes(exec, [&](uint32_t l) {
                wr(l, srcA(l) << (srcB(l) & 31u));
            });
            break;
          case Op::And:
            if (f32) {
                handled = false;
                break;
            }
            forLanes(exec, [&](uint32_t l) {
                wr(l, srcA(l) & srcB(l));
            });
            break;
          case Op::Or:
            if (f32) {
                handled = false;
                break;
            }
            forLanes(exec, [&](uint32_t l) {
                wr(l, srcA(l) | srcB(l));
            });
            break;
          default:
            handled = false;
            break;
        }
        if (handled)
            break;
        for (Mask m = exec; m; m &= m - 1) {
            const auto lane = static_cast<uint32_t>(std::countr_zero(m));
            const uint32_t a = operand(lane, ins, 0);
            const uint32_t b = nsrc > 1 ? operand(lane, ins, 1) : 0;
            const uint32_t c = nsrc > 2 ? operand(lane, ins, 2) : 0;
            uint32_t r = 0;
            if (isFloat(ins.type)) {
                const float x = asF32(a), y = asF32(b), z = asF32(c);
                float f = 0.0f;
                switch (ins.op) {
                  case Op::Add: f = x + y; break;
                  case Op::Sub: f = x - y; break;
                  case Op::Mul: f = x * y; break;
                  case Op::Div: f = x / y; break;
                  case Op::Mad: f = std::fmaf(x, y, z); break;
                  case Op::Min: f = std::fmin(x, y); break;
                  case Op::Max: f = std::fmax(x, y); break;
                  case Op::Abs: f = std::fabs(x); break;
                  case Op::Rcp: f = 1.0f / x; break;
                  case Op::Rsqrt: f = 1.0f / std::sqrt(x); break;
                  case Op::Sqrt: f = std::sqrt(x); break;
                  case Op::Ex2: f = std::exp2(x); break;
                  case Op::Lg2: f = std::log2(x); break;
                  case Op::Cvt:
                    // f32 <- integer source
                    f = isSigned(ins.type2)
                            ? static_cast<float>(static_cast<int32_t>(a))
                            : static_cast<float>(a);
                    break;
                  default:
                    panic("op %s not valid on f32", opName(ins.op));
                }
                r = asU32(f);
            } else {
                switch (ins.op) {
                  case Op::Add: r = a + b; break;
                  case Op::Sub: r = a - b; break;
                  case Op::Mul: r = a * b; break;
                  case Op::Div:
                    if (isSigned(ins.type)) {
                        r = b ? static_cast<uint32_t>(
                                    static_cast<int32_t>(a) /
                                    static_cast<int32_t>(b))
                              : 0;
                    } else {
                        r = b ? a / b : 0;
                    }
                    break;
                  case Op::Mad: r = a * b + c; break;
                  case Op::Mad24:
                    r = (a & 0xffffffu) * (b & 0xffffffu) + c;
                    break;
                  case Op::Min:
                    r = isSigned(ins.type)
                            ? static_cast<uint32_t>(
                                  std::min(static_cast<int32_t>(a),
                                           static_cast<int32_t>(b)))
                            : std::min(a, b);
                    break;
                  case Op::Max:
                    r = isSigned(ins.type)
                            ? static_cast<uint32_t>(
                                  std::max(static_cast<int32_t>(a),
                                           static_cast<int32_t>(b)))
                            : std::max(a, b);
                    break;
                  case Op::Abs:
                    r = isSigned(ins.type)
                            ? static_cast<uint32_t>(
                                  std::abs(static_cast<int32_t>(a)))
                            : a;
                    break;
                  case Op::And: r = a & b; break;
                  case Op::Or: r = a | b; break;
                  case Op::Xor: r = a ^ b; break;
                  case Op::Not: r = ~a; break;
                  case Op::Shl: r = a << (b & 31u); break;
                  case Op::Shr:
                    r = isSigned(ins.type)
                            ? static_cast<uint32_t>(
                                  static_cast<int32_t>(a) >> (b & 31u))
                            : a >> (b & 31u);
                    break;
                  case Op::Cvt:
                    if (isFloat(ins.type2)) {
                        const float x = asF32(a);
                        r = isSigned(ins.type)
                                ? static_cast<uint32_t>(
                                      static_cast<int32_t>(x))
                                : static_cast<uint32_t>(
                                      x < 0.0f ? 0.0f : x);
                    } else {
                        r = a;
                    }
                    break;
                  default:
                    panic("op %s not valid on int", opName(ins.op));
                }
            }
            writeReg(lane, ins.dst, canonical(ins.type, r));
        }
        break;
      }
    }

    pc_ = next_pc;
    resolveFast();
    st.warpDone = done_;
    if constexpr (Timing)
        return st;
    else if (st.warpDone || st.op == Op::Bar)
        return st;
  }
}

uint64_t
runFunctionalOnly(const KernelLaunch &launch,
                  const std::vector<uint64_t> &cta_ids,
                  const std::vector<uint32_t> &warp_ids,
                  DeviceMemory &gmem)
{
    TANGO_ASSERT(launch.program != nullptr, "launch without program");
    const DecodedProgram decoded(*launch.program);
    const Dim3 grid = launch.grid;
    const auto coordOf = [&grid](uint64_t linear) {
        Dim3 c;
        c.x = static_cast<uint32_t>(linear % grid.x);
        c.y = static_cast<uint32_t>((linear / grid.x) % grid.y);
        c.z = static_cast<uint32_t>(linear / (uint64_t(grid.x) * grid.y));
        return c;
    };

    uint64_t combined = digest::kInit;
    std::vector<uint8_t> smem;
    std::vector<std::unique_ptr<WarpExec>> warps;
    std::vector<uint8_t> waiting;

    for (uint64_t linear : cta_ids) {
        smem.assign(std::max<uint32_t>(launch.program->smemBytes, 1), 0);
        const Dim3 coord = coordOf(linear);
        warps.clear();
        waiting.assign(warp_ids.size(), 0);
        uint32_t live = 0;
        for (uint32_t w : warp_ids) {
            warps.push_back(std::make_unique<WarpExec>(
                launch, coord, w, gmem, smem, &decoded));
            warps.back()->enableStreamHash();
            if (!warps.back()->done())
                live++;
        }

        // Round-robin the CTA's warps.  A warp runs until it retires or
        // consumes a Bar; once every live warp has arrived at the barrier
        // all of them are released.  This is the same release rule the
        // timing core applies (barrierArrived >= liveWarps), so race-free
        // kernels compute identical values in both executors.
        uint32_t atBarrier = 0;
        while (live > 0) {
            bool progressed = false;
            for (size_t i = 0; i < warps.size(); i++) {
                WarpExec &we = *warps[i];
                if (we.done() || waiting[i])
                    continue;
                progressed = true;
                const auto st = we.runFunctionalSegment();
                if (st.warpDone) {
                    live--;
                } else {
                    // Segment ended on a consumed Bar.
                    waiting[i] = 1;
                    atBarrier++;
                }
            }
            if (live > 0 && atBarrier >= live) {
                std::fill(waiting.begin(), waiting.end(), 0);
                atBarrier = 0;
            } else if (!progressed) {
                // Every remaining warp is parked at a barrier that can
                // no longer be released — matches the timing core's
                // deadlock panic, so a memoized kernel cannot hide one.
                panic("functional replay deadlock in kernel %s",
                      launch.program->name.c_str());
            }
        }

        // Fold per-warp digests in (CTA order, warp order) position so
        // the combination is independent of the interleaving above.
        for (const auto &wp : warps)
            digest::mix(combined, wp->streamHash());
    }
    return combined;
}

} // namespace tango::sim
