/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All synthetic data in tango (weights, inputs) is produced by this
 * xoshiro128** generator so every run — and every platform — sees exactly
 * the same bits.  std::mt19937 distributions are not guaranteed identical
 * across standard libraries; this generator is self-contained.
 */

#ifndef TANGO_COMMON_RNG_HH
#define TANGO_COMMON_RNG_HH

#include <cstdint>

namespace tango {

/** Deterministic xoshiro128** PRNG with convenience distributions. */
class Rng
{
  public:
    /** Seed the generator; the same seed always yields the same stream. */
    explicit Rng(uint64_t seed = 0x7a6e676fULL);

    /** @return the next raw 32-bit value. */
    uint32_t next();

    /** @return a float uniform in [0, 1). */
    float uniform();

    /** @return a float uniform in [lo, hi). */
    float uniform(float lo, float hi);

    /** @return a standard-normal float (Box-Muller). */
    float gaussian();

    /** @return an integer uniform in [0, n). */
    uint32_t below(uint32_t n);

  private:
    uint32_t s_[4];
    bool haveSpare_ = false;
    float spare_ = 0.0f;
};

} // namespace tango

#endif // TANGO_COMMON_RNG_HH
