/**
 * @file
 * Interpreter tests: arithmetic semantics, memory spaces, predication,
 * special registers, SIMT divergence/reconvergence and coalescing.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/builder.hh"
#include "sim/interp.hh"
#include "sim/memory.hh"

namespace tango::sim {
namespace {

/** Run every warp of a single-CTA launch to completion, functionally. */
void
runCta(const KernelLaunch &launch, DeviceMemory &mem)
{
    std::vector<uint8_t> smem(
        std::max<uint32_t>(launch.program->smemBytes, 1), 0);
    const uint32_t warps = launch.warpsPerCta();
    std::vector<WarpExec> execs;
    execs.reserve(warps);
    for (uint32_t w = 0; w < warps; w++)
        execs.emplace_back(launch, Dim3{0, 0, 0}, w, mem, smem);
    // Round-robin warps one step at a time; honour barriers.
    bool progress = true;
    std::vector<bool> atBar(warps, false);
    while (progress) {
        progress = false;
        uint32_t waiting = 0, done = 0;
        for (uint32_t w = 0; w < warps; w++) {
            if (execs[w].done()) {
                done++;
                continue;
            }
            if (atBar[w]) {
                waiting++;
                continue;
            }
            const Step st = execs[w].step();
            progress = true;
            if (st.op == Op::Bar && !execs[w].done())
                atBar[w] = true;
        }
        if (!progress && done < warps) {
            // Everyone is at the barrier: release.
            ASSERT_EQ(waiting + done, warps) << "deadlock";
            for (uint32_t w = 0; w < warps; w++)
                atBar[w] = false;
            progress = true;
        }
    }
}

TEST(Interp, IntegerArithmetic)
{
    DeviceMemory mem(1 << 20);
    const uint32_t out = mem.allocate(64);

    kern::Builder b("int");
    kern::Reg a = b.immU(7);
    kern::Reg c = b.immU(5);
    kern::Reg sum = b.add(DType::U32, a, c);
    kern::Reg prod = b.mul(DType::U32, a, c);
    kern::Reg sh = b.shli(a, 3);
    kern::Reg m = b.madr(DType::U32, a, c, sum);
    kern::Reg addr = b.immU(out);
    b.st(DType::U32, Space::Global, addr, sum, 0);
    b.st(DType::U32, Space::Global, addr, prod, 4);
    b.st(DType::U32, Space::Global, addr, sh, 8);
    b.st(DType::U32, Space::Global, addr, m, 12);

    KernelLaunch l;
    l.program = b.finish();
    l.grid = l.block = {1, 1, 1};
    runCta(l, mem);

    EXPECT_EQ(mem.read<uint32_t>(out), 12u);
    EXPECT_EQ(mem.read<uint32_t>(out + 4), 35u);
    EXPECT_EQ(mem.read<uint32_t>(out + 8), 56u);
    EXPECT_EQ(mem.read<uint32_t>(out + 12), 7u * 5u + 12u);
}

TEST(Interp, FloatArithmeticAndSfu)
{
    DeviceMemory mem(1 << 20);
    const uint32_t out = mem.allocate(64);

    kern::Builder b("float");
    kern::Reg x = b.immF(3.0f);
    kern::Reg y = b.immF(4.0f);
    kern::Reg s = b.add(DType::F32, x, y);
    kern::Reg p = b.mul(DType::F32, x, y);
    kern::Reg r = b.reg();
    b.emit2(Op::Rsqrt, DType::F32, r, y);   // 0.5
    kern::Reg e = b.reg();
    b.emit2(Op::Ex2, DType::F32, e, x);     // 8
    kern::Reg addr = b.immU(out);
    b.st(DType::F32, Space::Global, addr, s, 0);
    b.st(DType::F32, Space::Global, addr, p, 4);
    b.st(DType::F32, Space::Global, addr, r, 8);
    b.st(DType::F32, Space::Global, addr, e, 12);

    KernelLaunch l;
    l.program = b.finish();
    l.grid = l.block = {1, 1, 1};
    runCta(l, mem);

    EXPECT_FLOAT_EQ(mem.read<float>(out), 7.0f);
    EXPECT_FLOAT_EQ(mem.read<float>(out + 4), 12.0f);
    EXPECT_NEAR(mem.read<float>(out + 8), 0.5f, 1e-6f);
    EXPECT_NEAR(mem.read<float>(out + 12), 8.0f, 1e-5f);
}

TEST(Interp, NarrowTypesCanonicalize)
{
    DeviceMemory mem(1 << 20);
    const uint32_t out = mem.allocate(64);

    kern::Builder b("narrow");
    kern::Reg a = b.immU(0x1fffe);           // 131070
    kern::Reg t = b.addi(DType::U16, a, 1);  // wraps to 16 bits: 0xffff
    kern::Reg s = b.reg();
    b.movU(s, 0xffff);                       // as s16: -1
    kern::Reg s2 = b.addi(DType::S16, s, 0); // canonicalizes to sext(-1)
    kern::Reg addr = b.immU(out);
    b.st(DType::U32, Space::Global, addr, t, 0);
    b.st(DType::U32, Space::Global, addr, s2, 4);

    KernelLaunch l;
    l.program = b.finish();
    l.grid = l.block = {1, 1, 1};
    runCta(l, mem);

    EXPECT_EQ(mem.read<uint32_t>(out), 0xffffu);
    EXPECT_EQ(mem.read<uint32_t>(out + 4), 0xffffffffu);
}

TEST(Interp, SpecialRegistersPerLane)
{
    DeviceMemory mem(1 << 20);
    const uint32_t out = mem.allocate(4 * 64);

    kern::Builder b("sregs");
    kern::Reg tx = b.movS(SReg::TidX);
    kern::Reg ty = b.movS(SReg::TidY);
    kern::Reg ntx = b.movS(SReg::NTidX);
    // linear = ty*ntx + tx
    kern::Reg lin = b.madr(DType::U32, ty, ntx, tx);
    kern::Reg off = b.shli(lin, 2);
    kern::Reg addr = b.addi(DType::U32, off, out);
    b.st(DType::U32, Space::Global, addr, lin);

    KernelLaunch l;
    l.program = b.finish();
    l.grid = {1, 1, 1};
    l.block = {8, 8, 1};
    runCta(l, mem);

    for (uint32_t i = 0; i < 64; i++)
        EXPECT_EQ(mem.read<uint32_t>(out + 4 * i), i);
}

TEST(Interp, PredicatedExecution)
{
    DeviceMemory mem(1 << 20);
    const uint32_t out = mem.allocate(4 * 32);
    // Pre-fill with sentinel.
    for (uint32_t i = 0; i < 32; i++)
        mem.write<uint32_t>(out + 4 * i, 999);

    kern::Builder b("pred");
    kern::Reg tx = b.movS(SReg::TidX);
    kern::PredReg p = b.pred();
    b.setpi(p, DType::U32, Cmp::Lt, tx, 10);
    kern::Reg off = b.shli(tx, 2);
    kern::Reg addr = b.addi(DType::U32, off, out);
    b.guard(p);
    b.st(DType::U32, Space::Global, addr, tx);
    b.endGuard();

    KernelLaunch l;
    l.program = b.finish();
    l.grid = {1, 1, 1};
    l.block = {32, 1, 1};
    runCta(l, mem);

    for (uint32_t i = 0; i < 32; i++) {
        EXPECT_EQ(mem.read<uint32_t>(out + 4 * i), i < 10 ? i : 999u)
            << "lane " << i;
    }
}

TEST(Interp, SelpSelects)
{
    DeviceMemory mem(1 << 20);
    const uint32_t out = mem.allocate(4 * 32);

    kern::Builder b("selp");
    kern::Reg tx = b.movS(SReg::TidX);
    kern::PredReg p = b.pred();
    b.setpi(p, DType::U32, Cmp::Ge, tx, 16);
    kern::Reg hi = b.immU(1);
    kern::Reg lo = b.immU(0);
    kern::Reg v = b.reg();
    b.selp(DType::U32, v, hi, lo, p);
    kern::Reg off = b.shli(tx, 2);
    kern::Reg addr = b.addi(DType::U32, off, out);
    b.st(DType::U32, Space::Global, addr, v);

    KernelLaunch l;
    l.program = b.finish();
    l.grid = {1, 1, 1};
    l.block = {32, 1, 1};
    runCta(l, mem);

    for (uint32_t i = 0; i < 32; i++)
        EXPECT_EQ(mem.read<uint32_t>(out + 4 * i), i >= 16 ? 1u : 0u);
}

TEST(Interp, DivergentBranchBothPathsExecute)
{
    DeviceMemory mem(1 << 20);
    const uint32_t out = mem.allocate(4 * 32);

    // if (tx < 8) out[tx] = 100; else out[tx] = 200;   (via ssy + bra)
    kern::Builder b("diverge");
    kern::Reg tx = b.movS(SReg::TidX);
    kern::Reg off = b.shli(tx, 2);
    kern::Reg addr = b.addi(DType::U32, off, out);
    kern::PredReg p = b.pred();
    b.setpi(p, DType::U32, Cmp::Lt, tx, 8);
    kern::Label elseL = b.label();
    kern::Label endL = b.label();
    b.ssy(endL);
    b.braIf(elseL, p, /*negate=*/true);
    kern::Reg v1 = b.immU(100);
    b.st(DType::U32, Space::Global, addr, v1);
    b.bra(endL);
    b.bind(elseL);
    kern::Reg v2 = b.immU(200);
    b.st(DType::U32, Space::Global, addr, v2);
    b.bind(endL);
    // After reconvergence every lane adds 1 to its cell.
    kern::Reg cur = b.reg();
    b.ld(DType::U32, Space::Global, cur, addr);
    kern::Reg inc = b.addi(DType::U32, cur, 1);
    b.st(DType::U32, Space::Global, addr, inc);

    KernelLaunch l;
    l.program = b.finish();
    l.grid = {1, 1, 1};
    l.block = {32, 1, 1};
    runCta(l, mem);

    for (uint32_t i = 0; i < 32; i++) {
        EXPECT_EQ(mem.read<uint32_t>(out + 4 * i),
                  (i < 8 ? 100u : 200u) + 1u)
            << "lane " << i;
    }
}

TEST(Interp, DivergentLoopTripCounts)
{
    DeviceMemory mem(1 << 20);
    const uint32_t out = mem.allocate(4 * 32);

    // Each lane loops tx times: out[tx] = tx (accumulated by 1s).
    kern::Builder b("divloop");
    kern::Reg tx = b.movS(SReg::TidX);
    kern::Reg acc = b.immU(0);
    kern::Reg i = b.reg();
    kern::Label head = b.label();
    kern::Label done = b.label();
    kern::PredReg p = b.pred();
    b.ssy(done);
    b.movU(i, 0);
    b.bind(head);
    b.setp(p, DType::U32, Cmp::Ge, i, tx);
    b.braIf(done, p);
    b.emit3i(Op::Add, DType::U32, acc, acc, 1);
    b.emit3i(Op::Add, DType::U32, i, i, 1);
    b.bra(head);
    b.bind(done);
    kern::Reg off = b.shli(tx, 2);
    kern::Reg addr = b.addi(DType::U32, off, out);
    b.st(DType::U32, Space::Global, addr, acc);

    KernelLaunch l;
    l.program = b.finish();
    l.grid = {1, 1, 1};
    l.block = {32, 1, 1};
    runCta(l, mem);

    for (uint32_t i = 0; i < 32; i++)
        EXPECT_EQ(mem.read<uint32_t>(out + 4 * i), i) << "lane " << i;
}

TEST(Interp, SharedMemoryAndBarrier)
{
    DeviceMemory mem(1 << 20);
    const uint32_t out = mem.allocate(4 * 64);

    // Two warps: each thread writes tid to shared, barrier, then reads
    // the reversed slot.
    kern::Builder b("smem");
    const uint32_t sh = b.shared(64 * 4);
    kern::Reg tx = b.movS(SReg::TidX);
    kern::Reg off = b.shli(tx, 2);
    kern::Reg saddr = b.addi(DType::U32, off, sh);
    b.st(DType::U32, Space::Shared, saddr, tx);
    b.bar();
    // rev = 63 - tx
    kern::Reg c63 = b.immU(63);
    kern::Reg rev = b.reg();
    b.emit3(Op::Sub, DType::U32, rev, c63, tx);
    kern::Reg roff = b.shli(rev, 2);
    kern::Reg raddr = b.addi(DType::U32, roff, sh);
    kern::Reg v = b.reg();
    b.ld(DType::U32, Space::Shared, v, raddr);
    kern::Reg gaddr = b.addi(DType::U32, off, out);
    b.st(DType::U32, Space::Global, gaddr, v);

    KernelLaunch l;
    l.program = b.finish();
    l.grid = {1, 1, 1};
    l.block = {64, 1, 1};
    runCta(l, mem);

    for (uint32_t i = 0; i < 64; i++)
        EXPECT_EQ(mem.read<uint32_t>(out + 4 * i), 63 - i);
}

TEST(Interp, ConstantAndParamLoads)
{
    DeviceMemory mem(1 << 20);
    const uint32_t out = mem.allocate(16);

    kern::Builder b("const");
    b.constant(8);
    kern::Reg c0 = b.ldc(DType::U32, 0);
    kern::Reg c1 = b.ldc(DType::U32, 4);
    kern::Reg p0 = b.param(0);
    kern::Reg sum = b.add(DType::U32, c0, c1);
    kern::Reg addr = b.immU(out);
    b.st(DType::U32, Space::Global, addr, sum, 0);
    b.st(DType::U32, Space::Global, addr, p0, 4);

    KernelLaunch l;
    l.program = b.finish();
    l.grid = l.block = {1, 1, 1};
    l.params = {777};
    l.constData.resize(8);
    const uint32_t a = 11, bb = 31;
    std::memcpy(l.constData.data(), &a, 4);
    std::memcpy(l.constData.data() + 4, &bb, 4);
    runCta(l, mem);

    EXPECT_EQ(mem.read<uint32_t>(out), 42u);
    EXPECT_EQ(mem.read<uint32_t>(out + 4), 777u);
}

TEST(Interp, CoalescingCountsSegments)
{
    DeviceMemory mem(1 << 20);
    const uint32_t buf = mem.allocate(4 * 1024);

    // Contiguous 4-byte loads by 32 lanes cover exactly one 128B segment.
    kern::Builder b("coalesce");
    kern::Reg tx = b.movS(SReg::TidX);
    kern::Reg off = b.shli(tx, 2);
    kern::Reg addr = b.addi(DType::U32, off, buf);
    kern::Reg v = b.reg();
    b.ld(DType::U32, Space::Global, v, addr);
    // Strided loads (128B apart) need one segment per lane.
    kern::Reg off2 = b.shli(tx, 7);
    kern::Reg addr2 = b.addi(DType::U32, off2, buf);
    kern::Reg v2 = b.reg();
    b.ld(DType::U32, Space::Global, v2, addr2);

    KernelLaunch l;
    l.program = b.finish();
    l.grid = {1, 1, 1};
    l.block = {32, 1, 1};

    std::vector<uint8_t> smem(1);
    WarpExec w(l, {0, 0, 0}, 0, mem, smem);
    std::vector<Step> loads;
    while (!w.done()) {
        Step st = w.step();
        if (st.op == Op::Ld && st.space == Space::Global)
            loads.push_back(st);
    }
    ASSERT_EQ(loads.size(), 2u);
    EXPECT_EQ(loads[0].numSegments, 1u);
    EXPECT_EQ(loads[1].numSegments, 32u);
}

TEST(Interp, SharedBankConflictsDetected)
{
    DeviceMemory mem(1 << 20);

    kern::Builder b("conflict");
    const uint32_t sh = b.shared(4096);
    kern::Reg tx = b.movS(SReg::TidX);
    // addr = tx * 128 -> every lane hits bank 0 with distinct addresses.
    kern::Reg off = b.shli(tx, 7);
    kern::Reg saddr = b.addi(DType::U32, off, sh);
    kern::Reg v = b.reg();
    b.ld(DType::U32, Space::Shared, v, saddr);
    // addr = tx * 4: conflict-free.
    kern::Reg off2 = b.shli(tx, 2);
    kern::Reg saddr2 = b.addi(DType::U32, off2, sh);
    kern::Reg v2 = b.reg();
    b.ld(DType::U32, Space::Shared, v2, saddr2);

    KernelLaunch l;
    l.program = b.finish();
    l.grid = {1, 1, 1};
    l.block = {32, 1, 1};

    std::vector<uint8_t> smem(4096, 0);
    WarpExec w(l, {0, 0, 0}, 0, mem, smem);
    std::vector<Step> loads;
    while (!w.done()) {
        Step st = w.step();
        if (st.op == Op::Ld && st.space == Space::Shared)
            loads.push_back(st);
    }
    ASSERT_EQ(loads.size(), 2u);
    EXPECT_EQ(loads[0].sharedSerialization, 32u);
    EXPECT_EQ(loads[1].sharedSerialization, 1u);
}

TEST(Interp, PartialWarpMasksInactiveLanes)
{
    DeviceMemory mem(1 << 20);
    const uint32_t out = mem.allocate(4 * 32);
    for (uint32_t i = 0; i < 32; i++)
        mem.write<uint32_t>(out + 4 * i, 555);

    kern::Builder b("partial");
    kern::Reg tx = b.movS(SReg::TidX);
    kern::Reg off = b.shli(tx, 2);
    kern::Reg addr = b.addi(DType::U32, off, out);
    b.st(DType::U32, Space::Global, addr, tx);

    KernelLaunch l;
    l.program = b.finish();
    l.grid = {1, 1, 1};
    l.block = {20, 1, 1};   // partial warp
    runCta(l, mem);

    for (uint32_t i = 0; i < 32; i++) {
        EXPECT_EQ(mem.read<uint32_t>(out + 4 * i), i < 20 ? i : 555u)
            << "lane " << i;
    }
}

} // namespace
} // namespace tango::sim
