/**
 * @file
 * Fig 14 reproduction: L2 miss *ratio* per layer type with the L1D
 * bypassed.
 *
 * Paper shape to hold (Observation 11): convolution layers miss in L2 at
 * a far lower rate (<~1%) than fully-connected layers (~10%) — conv has
 * high data locality, FC streams its weights once.
 */

#include "bench_util.hh"

namespace {

using namespace tango;

const std::vector<std::string> figNets = {"cifarnet", "alexnet",
                                          "squeezenet", "resnet"};
const std::vector<std::string> figLayers = {"Conv",  "Pooling", "FC",
                                            "Norm",  "Fire",    "Relu",
                                            "Scale", "Eltwise"};

double
figStat(const rt::NetRun &run, const std::string &fig,
        const std::string &stat)
{
    double total = 0.0;
    for (const auto &l : run.layers) {
        std::string f = l.figType;
        if (f == "Fire_Squeeze" || f == "Fire_Expand")
            f = "Fire";
        if (f != fig)
            continue;
        for (const auto &k : l.kernels)
            total += k.stats.get(stat);
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    std::vector<bench::RunKey> keys;
    for (const auto &net : figNets) {
        bench::RunKey key{net};
        key.l1dBytes = 0;
        key.policy = "mem";
        keys.push_back(key);
    }
    bench::prefetch(keys);

    std::vector<std::vector<double>> values;
    for (const auto &net : figNets) {
        bench::RunKey key{net};
        key.l1dBytes = 0;
        key.policy = "mem";
        const rt::NetRun &run = bench::netRun(key);
        std::vector<double> col;
        for (const auto &fig : figLayers) {
            const double acc = figStat(run, fig, "mem.l2.accesses");
            const double miss = figStat(run, fig, "mem.l2.misses");
            col.push_back(acc > 0 ? miss / acc : 0.0);
        }
        values.push_back(col);
    }

    rt::printStacked(std::cout,
                     "Fig 14: L2 miss ratio per layer type (no L1D)",
                     figNets, figLayers, values);

    // Observation 11: conv ratio << FC ratio (averaged over networks).
    double convR = 0.0, fcR = 0.0;
    int convN = 0, fcN = 0;
    for (size_t n = 0; n < figNets.size(); n++) {
        if (values[n][0] > 0) {
            convR += values[n][0];
            convN++;
        }
        if (values[n][2] > 0) {
            fcR += values[n][2];
            fcN++;
        }
    }
    convR = convN ? convR / convN : 0.0;
    fcR = fcN ? fcR / fcN : 0.0;
    std::cout << "Observation 11: avg conv L2 miss ratio = "
              << Table::pct(convR) << " vs avg FC = " << Table::pct(fcR)
              << " (paper: <1% vs ~10%)\n";

    bench::registerValue("fig14/conv_ratio", "ratio", convR);
    bench::registerValue("fig14/fc_ratio", "ratio", fcR);
    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
