#include "nn/models/models.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace tango::nn::models {

namespace {

/** CifarNet / Table III mapping: one (32,32) block per layer, filters
 *  looped inside the thread. */
LaunchHint
cifarHint()
{
    LaunchHint h;
    h.chanSrc = kern::ChannelSrc::Loop;
    h.pixMap = kern::PixelMap::TileOrigin;
    h.grid = {1, 1, 1};
    h.block = {32, 32, 1};
    return h;
}

} // namespace

Network
buildCifarNet()
{
    // The cifar10-quick structure trained for 9 traffic signals (paper
    // Table I): conv(5x5,32) -> maxpool -> conv(5x5,32)+relu -> avgpool ->
    // conv(5x5,64)+relu -> avgpool -> fc(64) -> fc(9) -> softmax.
    Network net;
    net.name = "cifarnet";
    net.inC = 3;
    net.inH = net.inW = 32;

    int prev = -1;
    auto conv = [&](const std::string &name, uint32_t c, uint32_t hw,
                    uint32_t k, bool relu) {
        Layer l;
        l.kind = LayerKind::Conv;
        l.name = name;
        l.figType = "Conv";
        l.C = c;
        l.H = l.W = hw;
        l.K = k;
        l.R = l.S = 5;
        l.stride = 1;
        l.pad = 2;
        l.P = l.Q = hw;
        l.relu = relu;
        l.inputs = {prev};
        l.hint = cifarHint();
        prev = net.add(l);
    };
    auto pool = [&](const std::string &name, uint32_t c, uint32_t hw,
                    bool avg) {
        Layer l;
        l.kind = LayerKind::Pool;
        l.name = name;
        l.figType = "Pooling";
        l.C = c;
        l.H = l.W = hw;
        l.R = l.S = 3;
        l.stride = 2;
        l.P = l.Q = (hw - 3) / 2 + 1;
        l.avg = avg;
        l.inputs = {prev};
        l.hint = cifarHint();
        prev = net.add(l);
    };

    conv("conv1", 3, 32, 32, false);
    pool("pool1", 32, 32, false);         // -> 15x15
    conv("conv2", 32, 15, 32, true);
    pool("pool2", 32, 15, true);          // -> 7x7
    conv("conv3", 32, 7, 64, true);
    pool("pool3", 64, 7, true);           // -> 3x3

    Layer fc1;
    fc1.kind = LayerKind::FC;
    fc1.name = "fc1";
    fc1.figType = "FC";
    fc1.inN = 64 * 3 * 3;
    fc1.outN = 64;
    fc1.inputs = {prev};
    fc1.hint.grid = {1, 1, 1};
    fc1.hint.block = {64, 1, 1};
    prev = net.add(fc1);

    Layer fc2;
    fc2.kind = LayerKind::FC;
    fc2.name = "fc2";
    fc2.figType = "FC";
    fc2.inN = 64;
    fc2.outN = 9;              // nine traffic signals
    fc2.inputs = {prev};
    fc2.hint.grid = {1, 1, 1};
    fc2.hint.block = {32, 1, 1};   // Table III: 32-thread block, guarded
    prev = net.add(fc2);

    Layer sm;
    sm.kind = LayerKind::Softmax;
    sm.name = "softmax";
    sm.figType = "Others";
    sm.inN = sm.outN = 9;
    sm.inputs = {prev};
    sm.hint.grid = {1, 1, 1};
    sm.hint.block = {32, 1, 1};
    net.add(sm);

    return net;
}

Tensor
makeInputImage(uint32_t c, uint32_t h, uint32_t w, uint64_t seed)
{
    Tensor t({c, h, w});
    Rng rng(seed);
    // Smooth synthetic "photo": low-frequency gradients plus noise, in a
    // mean-subtracted range like preprocessed ImageNet inputs.
    for (uint32_t ch = 0; ch < c; ch++) {
        const float phase = 0.7f * float(ch);
        for (uint32_t y = 0; y < h; y++) {
            for (uint32_t x = 0; x < w; x++) {
                const float fy = float(y) / float(h);
                const float fx = float(x) / float(w);
                float v = 0.5f * fy + 0.3f * fx + 0.2f * phase;
                v += 0.15f * rng.gaussian();
                t.at(ch, y, x) = v - 0.5f;
            }
        }
    }
    return t;
}

std::vector<float>
makeStockSequence(uint32_t steps, uint64_t seed)
{
    // Scaled bitcoin-style price walk in [0, 1].
    Rng rng(seed);
    std::vector<float> out(steps);
    float p = 0.45f;
    for (uint32_t i = 0; i < steps; i++) {
        p += 0.04f * rng.gaussian();
        if (p < 0.05f)
            p = 0.05f;
        if (p > 0.95f)
            p = 0.95f;
        out[i] = p;
    }
    return out;
}

} // namespace tango::nn::models
