#include "common/rng.hh"

#include <cmath>

namespace tango {

namespace {
inline uint32_t
rotl(uint32_t x, int k)
{
    return (x << k) | (x >> (32 - k));
}

inline uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}
} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (int i = 0; i < 4; i++)
        s_[i] = static_cast<uint32_t>(splitmix64(sm) >> 16);
    // Avoid the all-zero state, which is a fixed point.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint32_t
Rng::next()
{
    const uint32_t result = rotl(s_[1] * 5, 7) * 9;
    const uint32_t t = s_[1] << 9;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 11);
    return result;
}

float
Rng::uniform()
{
    // 24 mantissa bits -> uniform in [0, 1)
    return static_cast<float>(next() >> 8) * (1.0f / 16777216.0f);
}

float
Rng::uniform(float lo, float hi)
{
    return lo + (hi - lo) * uniform();
}

float
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    float u1 = uniform();
    float u2 = uniform();
    if (u1 < 1e-12f)
        u1 = 1e-12f;
    const float r = std::sqrt(-2.0f * std::log(u1));
    const float theta = 6.28318530718f * u2;
    spare_ = r * std::sin(theta);
    haveSpare_ = true;
    return r * std::cos(theta);
}

uint32_t
Rng::below(uint32_t n)
{
    if (n == 0)
        return 0;
    return next() % n;
}

} // namespace tango
