/**
 * @file
 * Ablation: how much error do the three sampling levers introduce?
 *
 * DESIGN.md commits this reproduction to sampled simulation (the paper
 * burned hours per network on GPGPU-Sim; the benches here take seconds).
 * This bench quantifies the cost: CifarNet — small enough to simulate
 * exactly — is run (a) fully, (b) with warp sampling, (c) with
 * loop-channel sampling, (d) with the full bench policy, and the
 * extrapolated statistics are compared against ground truth.
 */

#include "bench_util.hh"

namespace {

using namespace tango;

/** Submit one sampling variant as a custom engine job. */
std::shared_future<const rt::NetRun *>
submitWith(const std::string &tag, const rt::RunPolicy &p)
{
    return bench::engine().submit(
        "abl/cifarnet/" + tag, sim::pascalGP102(), [p](sim::Gpu &gpu) {
            return rt::runNetworkByName(gpu, "cifarnet", p);
        });
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    rt::RunPolicy exact = rt::RunPolicy::named("exact");

    rt::RunPolicy warpOnly = exact;
    warpOnly.sim.fullSim = false;
    warpOnly.sim.maxWarpsPerCta = 6;

    rt::RunPolicy loopOnly = exact;
    loopOnly.sim.fullSim = false;
    loopOnly.maxLoopChannels = 8;

    const rt::RunPolicy benchP = rt::RunPolicy::named("bench");

    struct Row
    {
        const char *name;
        std::shared_future<const rt::NetRun *> future;
    };
    // All four sampling variants simulate concurrently.
    std::vector<Row> rows;
    rows.push_back({"exact", submitWith("exact", exact)});
    rows.push_back({"warp-sampled (6/CTA)", submitWith("warp", warpOnly)});
    rows.push_back({"loop-sampled (8 ch)", submitWith("loop", loopOnly)});
    rows.push_back({"bench policy (all)", submitWith("bench", benchP)});

    const rt::NetRun &gt = *rows[0].future.get();
    Table t("Sampling-fidelity ablation (CifarNet, GP102)");
    t.header({"policy", "time (ms)", "time err", "instrs", "instr err",
              "L2 misses", "conv share"});
    for (const auto &r : rows) {
        const rt::NetRun &run = *r.future.get();
        const double tErr = run.totalTimeSec / gt.totalTimeSec - 1.0;
        const double iGt = gt.totals.sumPrefix("op.");
        const double iErr = run.totals.sumPrefix("op.") / iGt - 1.0;
        t.row({r.name, Table::num(run.totalTimeSec * 1e3, 3),
               Table::pct(tErr), Table::num(run.totals.sumPrefix("op."), 0),
               Table::pct(iErr),
               Table::num(run.totals.get("mem.l2.misses"), 0),
               Table::pct(run.figTypeTime("Conv") / run.totalTimeSec)});
        bench::registerValue(std::string("ablation/") + r.name +
                                 "/time_err",
                             "rel_err", tErr);
    }
    t.print(std::cout);
    std::cout << "Instruction counts extrapolate exactly (the loops are "
                 "homogeneous); timing error stays within tens of "
                 "percent while the bench policy is orders of magnitude "
                 "faster to simulate.\n";

    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
