#include "sim/dram.hh"

#include "sim/digest.hh"

#include <algorithm>

namespace tango::sim {

Dram::Dram(uint32_t latency, double issue_interval)
    : latency_(latency), issueInterval_(std::max(issue_interval, 0.0))
{
}

uint64_t
Dram::queueDelay(uint64_t now) const
{
    const double d = nextFree_ - static_cast<double>(now);
    return d > 0.0 ? static_cast<uint64_t>(d) : 0;
}

uint64_t
Dram::schedule(uint64_t now)
{
    const double start = std::max(nextFree_, static_cast<double>(now));
    const uint64_t qd = static_cast<uint64_t>(start) - now;
    queueCycles_ += qd;
    nextFree_ = start + issueInterval_;
    accesses_++;
    const uint64_t avail = static_cast<uint64_t>(start) + latency_;
    if (trace_ && trace_->wants(trace::EventKind::DramAccess)) {
        trace::Event e;
        e.kind = trace::EventKind::DramAccess;
        e.cycle = now;
        e.payload = avail - now;   // total service latency
        e.arg = static_cast<uint32_t>(qd);
        e.core = traceCore_;
        trace_->record(e);
    }
    return avail;
}

uint64_t
Dram::stateDigest() const
{
    // nextFree_ is the only state that outlives an access; accesses_ and
    // queueCycles_ are statistics, already pinned through KernelStats.
    uint64_t h = digest::kInit;
    digest::mixDouble(h, nextFree_);
    return h;
}

void
Dram::reset()
{
    nextFree_ = 0.0;
    accesses_ = 0;
    queueCycles_ = 0;
}

} // namespace tango::sim
