/**
 * @file
 * The SIMT warp interpreter: functional execution of kernel programs.
 *
 * Unlike a trace generator, the interpreter computes *real values* — loads
 * read and stores write actual device memory, arithmetic produces real
 * results.  Small kernels can therefore run end-to-end on the simulator and
 * be checked bit-for-bit against the CPU reference implementation, while
 * the same execution drives the timing model through the Step records.
 *
 * Branch divergence is handled with a PDOM-style reconvergence stack keyed
 * by SSY-declared reconvergence points, as in real NVIDIA hardware.
 */

#ifndef TANGO_SIM_INTERP_HH
#define TANGO_SIM_INTERP_HH

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "sim/digest.hh"
#include "sim/memory.hh"
#include "sim/program.hh"

namespace tango::sim {

/** Threads per warp. */
inline constexpr uint32_t warpSize = 32;

/** A lane mask (bit i = lane i active). */
using Mask = uint32_t;

/** Everything the timing model needs to know about one executed warp
 *  instruction. */
struct Step
{
    Op op = Op::Nop;
    DType type = DType::None;
    Unit unit = Unit::SP;
    uint32_t activeCount = 0;   ///< lanes that actually executed
    bool warpDone = false;      ///< warp retired with this step

    // Memory information (valid when isMem).
    bool isMem = false;
    bool isStore = false;
    Space space = Space::Global;
    uint32_t numSegments = 0;   ///< coalesced 128B global segments
    /**
     * Segment base byte addresses.
     *
     * Contract: only [0, numSegments) are defined, plus [0] for Const
     * loads; every other entry is *intentionally uninitialized* — zeroing
     * 128 bytes per dynamic instruction dominates small steps.  All
     * consumers (SmCore::memoryLatency in particular) must read only the
     * defined prefix; the memoization detector's Step-stream digest folds
     * raw per-lane addresses inside WarpExec instead of this array, so
     * MSan/valgrind runs stay clean under TANGO_STEP_SEGMENTS_ZEROED
     * (below).
     *
     * Building with -DTANGO_SANITIZE=memory (or any build that defines
     * TANGO_STEP_SEGMENTS_ZEROED) zero-initializes the array so that an
     * accidental out-of-contract read is a deterministic zero instead of
     * an uninitialized-value report storm, keeping real contract
     * violations findable.
     */
#ifdef TANGO_STEP_SEGMENTS_ZEROED
    uint32_t segments[warpSize] = {};
#else
    uint32_t segments[warpSize];
#endif
    uint32_t sharedSerialization = 1; ///< shared-memory bank conflict factor
    bool constUniform = true;   ///< constant access was a broadcast

    bool controlTransfer = false; ///< pc changed non-sequentially
    uint32_t numSrcRegs = 0;    ///< register-file read operands
    bool writesReg = false;     ///< register-file write-back
};

/**
 * Coalesce the active lanes' global addresses into 128-byte segments.
 *
 * Segments are emitted in first-appearance order over ascending lane index
 * (the order the per-lane memory model observes them), deduplicated with a
 * last-segment fast path — warps overwhelmingly touch runs of consecutive
 * addresses, so most lanes resolve without scanning the emitted list.
 *
 * @param addrs per-lane byte addresses (entries of inactive lanes ignored).
 * @param exec  active-lane mask.
 * @param out   receives the segment base addresses.
 * @return number of distinct segments written to @p out.
 */
uint32_t coalesceSegments(const uint32_t addrs[warpSize], Mask exec,
                          uint32_t out[warpSize]);

/**
 * Functional-only execution of one kernel launch: runs the same sampled
 * CTA/warp population a full SmCore simulation would run, computes real
 * values (loads/stores touch device memory) but no timing, and returns
 * the combined Step-stream digest.
 *
 * Warps execute round-robin within each CTA with correct barrier
 * semantics (a warp pauses after consuming a Bar until every live warp of
 * its CTA has arrived), so any race-free kernel produces exactly the
 * values and per-warp Step streams of the interleaved timing simulation.
 * Per-warp streams are digested independently and folded in (CTA order,
 * warp order) position — the same combination SmCore::run uses — so the
 * result is directly comparable and independent of interleaving.
 *
 * @param launch   the kernel.
 * @param cta_ids  linear CTA indices to execute (launch order).
 * @param warp_ids warp indices within each CTA to execute.
 * @param gmem     device global memory.
 * @return the combined Step-stream digest of the executed population.
 */
uint64_t runFunctionalOnly(const KernelLaunch &launch,
                           const std::vector<uint64_t> &cta_ids,
                           const std::vector<uint32_t> &warp_ids,
                           DeviceMemory &gmem);

/**
 * Execution state of one warp.
 *
 * The owning core provides global memory, the CTA's shared-memory block and
 * the launch's constant bank.
 */
class WarpExec
{
  public:
    /**
     * @param launch kernel being executed.
     * @param cta_id this warp's CTA coordinates.
     * @param warp_in_cta warp index within the CTA.
     * @param gmem device global memory.
     * @param smem the CTA's shared-memory block (smemBytes long).
     * @param dec  predecoded form of the launch's program; pass the shared
     *             per-kernel instance to decode once instead of per warp
     *             (nullptr = decode privately).
     */
    WarpExec(const KernelLaunch &launch, Dim3 cta_id, uint32_t warp_in_cta,
             DeviceMemory &gmem, std::vector<uint8_t> &smem,
             const DecodedProgram *dec = nullptr);

    /** @return whether every lane has retired. */
    bool done() const { return done_; }

    /** @return the next instruction to issue (after reconvergence). */
    const Instr &peek();

    /** @return the predecoded form of the next instruction to issue. */
    const DecodedInstr &peekDecoded();

    /** @return current pc (after reconvergence resolution). */
    uint32_t pc();

    /** Execute the next instruction for all active lanes. */
    Step step();

    /** Minimal result of a functional-only run segment: just enough for
     *  the caller to drive barriers and retirement.  Returned in
     *  registers — no Step record is assembled on the fast path. */
    struct StepLite
    {
        Op op = Op::Nop;       ///< the last instruction executed
        bool warpDone = false; ///< warp retired
    };

    /**
     * Value-only variant of step(): identical lane execution, control flow
     * and stream-hash folds, but none of the timing shaping (segment
     * coalescing, shared-memory bank conflicts, const-broadcast scan,
     * Step accounting fields).  Executes instructions *in a batch* — until
     * the warp either consumes a Bar (op == Op::Bar on return) or retires
     * (warpDone) — so the per-call cost amortizes over the whole
     * barrier-to-barrier segment.  This is what launch replay
     * (sim/gpu.cc) runs.
     */
    StepLite runFunctionalSegment();

    /**
     * Start folding this warp's executed-instruction stream into an
     * internal digest (readable via streamHash()).
     *
     * The digest covers everything the *timing model* consumes from the
     * stream — per step the pc and executing lane mask (which pin opcode,
     * unit, type and active count), the raw per-lane addresses of every
     * memory access (which pin coalesced segments, bank serialization and
     * const-broadcast shape), and branch outcomes — but no data values:
     * two executions with equal digests take bit-identical trips through
     * the timing model.  step() and runFunctionalSegment() fold
     * identically, so
     * digests from a full simulation and a functional-only replay are
     * directly comparable.  This is the self-validation primitive of the
     * launch-memoization layer (sim/gpu.cc): a replayed launch must
     * reproduce the digest recorded during full simulation, else the
     * replay is abandoned.
     */
    void enableStreamHash() { hashing_ = true; }

    /** @return the stream digest folded so far (kInit when disabled). */
    uint64_t streamHash() const { return streamHash_; }

    /** @return warp index within the CTA. */
    uint32_t warpInCta() const { return warpInCta_; }

  private:
    struct StackEntry
    {
        uint32_t pc;
        int32_t rpc;
        Mask mask;
        bool isReconv;
    };

    /** Pop/reconverge until the current path is executable (slow path;
     *  call through resolveFast()). */
    void resolve();

    /** Inline fast path of resolve(): the overwhelmingly common case —
     *  live lanes, no reconvergence point reached — is three compares
     *  and no call. */
    void resolveFast()
    {
        if (done_)
            return;
        if (active_ == 0 ||
            (rpc_ >= 0 && pc_ == static_cast<uint32_t>(rpc_))) {
            resolve();
        }
    }

    /** Shared body of step()/runFunctionalSegment(): one instruction per
     *  call in the Timing instantiation, a barrier-to-barrier batch in the
     *  functional one. */
    template <bool Timing>
    std::conditional_t<Timing, Step, StepLite> stepT();

    /** Fold the active lanes' memory addresses into the stream digest. */
    void foldAddrs(Mask exec, const uint32_t addrs[warpSize]);

    uint32_t readReg(uint32_t lane, uint8_t r) const;
    void writeReg(uint32_t lane, uint8_t r, uint32_t v);
    uint32_t operand(uint32_t lane, const Instr &ins, int i) const;

    const KernelLaunch &launch_;
    const Program &prog_;
    const DecodedProgram *dec_ = nullptr;
    std::unique_ptr<DecodedProgram> ownDec_;  ///< used when none was shared
    DeviceMemory &gmem_;
    std::vector<uint8_t> &smem_;

    // Register state: reg-major [reg][lane].
    std::vector<uint32_t> regs_;
    std::vector<Mask> preds_;

    // Per-lane thread coordinates.
    uint32_t tidX_[warpSize], tidY_[warpSize], tidZ_[warpSize];
    Dim3 ctaId_;
    uint32_t warpInCta_ = 0;

    // Control flow.
    uint32_t pc_ = 0;
    int32_t rpc_ = -1;
    Mask active_ = 0;
    std::vector<StackEntry> stack_;
    bool done_ = false;

    // Stream digest (enableStreamHash()).
    bool hashing_ = false;
    uint64_t streamHash_ = digest::kInit;
};

} // namespace tango::sim

#endif // TANGO_SIM_INTERP_HH
