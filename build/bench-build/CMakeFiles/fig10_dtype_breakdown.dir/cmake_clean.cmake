file(REMOVE_RECURSE
  "../bench/fig10_dtype_breakdown"
  "../bench/fig10_dtype_breakdown.pdb"
  "CMakeFiles/fig10_dtype_breakdown.dir/fig10_dtype_breakdown.cc.o"
  "CMakeFiles/fig10_dtype_breakdown.dir/fig10_dtype_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dtype_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
