#include "sim/scheduler.hh"

#include <algorithm>
#include <bit>
#include <cstring>

namespace tango::sim {

namespace {

/** Greedy-then-oldest. */
class GtoScheduler : public WarpScheduler
{
  public:
    void
    reset(uint32_t num_slots) override
    {
        n_ = num_slots;
        current_ = -1;
    }

    int
    pick(const std::vector<uint8_t> &issuable,
         const std::vector<uint64_t> &age) override
    {
        if (current_ >= 0 && static_cast<uint32_t>(current_) < n_ &&
            issuable[current_]) {
            return current_;
        }
        // Oldest-issuable scan.  Issuable slots are usually sparse, so the
        // flag bytes are walked eight at a time and all-zero words skipped;
        // visiting order (ascending slot) and the pick are unchanged.
        int best = -1;
        const uint8_t *flags = issuable.data();
        uint32_t i = 0;
        for (; i + 8 <= n_; i += 8) {
            uint64_t word;
            std::memcpy(&word, flags + i, 8);
            while (word) {
                const auto byte = static_cast<uint32_t>(
                    std::countr_zero(word) >> 3);
                const uint32_t slot = i + byte;
                if (best < 0 || age[slot] < age[best])
                    best = static_cast<int>(slot);
                word &= ~(0xffull << (byte * 8));
            }
        }
        for (; i < n_; i++) {
            if (!issuable[i])
                continue;
            if (best < 0 || age[i] < age[best])
                best = static_cast<int>(i);
        }
        current_ = best;
        return best;
    }

    void
    notifyNoneIssuable() override
    {
        current_ = -1;   // a failed pick() scan would have stored best = -1
    }

    void
    notifyRetired(uint32_t slot) override
    {
        if (current_ == static_cast<int>(slot))
            current_ = -1;
    }

  private:
    uint32_t n_ = 0;
    int current_ = -1;
};

/** Loose round-robin. */
class LrrScheduler : public WarpScheduler
{
  public:
    void
    reset(uint32_t num_slots) override
    {
        n_ = num_slots;
        next_ = 0;
    }

    int
    pick(const std::vector<uint8_t> &issuable,
         const std::vector<uint64_t> &) override
    {
        for (uint32_t k = 0; k < n_; k++) {
            const uint32_t i = (next_ + k) % n_;
            if (issuable[i]) {
                next_ = (i + 1) % n_;
                return static_cast<int>(i);
            }
        }
        return -1;
    }

  private:
    uint32_t n_ = 0;
    uint32_t next_ = 0;
};

/** Two-level: round-robin within a small active set; a warp issuing a
 *  long-latency operation is demoted and the oldest pending warp promoted. */
class TlvScheduler : public WarpScheduler
{
  public:
    static constexpr uint32_t activeSetSize = 8;

    void
    reset(uint32_t num_slots) override
    {
        n_ = num_slots;
        next_ = 0;
        active_.assign(n_, 0);
        for (uint32_t i = 0; i < n_ && i < activeSetSize; i++)
            active_[i] = 1;
    }

    int
    pick(const std::vector<uint8_t> &issuable,
         const std::vector<uint64_t> &age) override
    {
        // Round-robin over the active set.
        for (uint32_t k = 0; k < n_; k++) {
            const uint32_t i = (next_ + k) % n_;
            if (active_[i] && issuable[i]) {
                next_ = (i + 1) % n_;
                return static_cast<int>(i);
            }
        }
        // Active set fully stalled: promote the oldest issuable pending
        // warp (demoting a stalled active one) and issue from it.
        int promote = -1;
        for (uint32_t i = 0; i < n_; i++) {
            if (active_[i] || !issuable[i])
                continue;
            if (promote < 0 || age[i] < age[promote])
                promote = static_cast<int>(i);
        }
        if (promote < 0)
            return -1;
        demoteOne();
        active_[promote] = 1;
        next_ = (promote + 1) % n_;
        return promote;
    }

    void
    notifyLongLatency(uint32_t slot) override
    {
        // Demote; promotion happens lazily in pick().
        if (slot < n_)
            active_[slot] = 0;
    }

    void
    notifyRetired(uint32_t slot) override
    {
        if (slot < n_)
            active_[slot] = 0;
    }

  private:
    void
    demoteOne()
    {
        uint32_t count = 0;
        for (uint32_t i = 0; i < n_; i++)
            count += active_[i];
        if (count < activeSetSize)
            return;
        // Demote the slot after the RR pointer (round-robin victim).
        for (uint32_t k = 0; k < n_; k++) {
            const uint32_t i = (next_ + k) % n_;
            if (active_[i]) {
                active_[i] = 0;
                return;
            }
        }
    }

    uint32_t n_ = 0;
    uint32_t next_ = 0;
    std::vector<uint8_t> active_;
};

} // namespace

std::unique_ptr<WarpScheduler>
makeScheduler(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::GTO:
        return std::make_unique<GtoScheduler>();
      case SchedPolicy::LRR:
        return std::make_unique<LrrScheduler>();
      case SchedPolicy::TLV:
        return std::make_unique<TlvScheduler>();
    }
    return std::make_unique<GtoScheduler>();
}

} // namespace tango::sim
