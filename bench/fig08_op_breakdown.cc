/**
 * @file
 * Fig 8 reproduction: operation-type breakdown per network.
 *
 * Paper shapes to hold (Observation 6): the two RNNs share one mix
 * pattern and the five CNNs another; add/ld/mad/set dominate RNNs, and
 * CNNs additionally use shl and mul heavily (index arithmetic).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace tango;
    setVerbose(false);

    const auto nets = nn::models::allNames();

    std::vector<bench::RunKey> keys;
    for (const auto &net : nets)
        keys.push_back({net});
    bench::prefetch(keys);

    // Collect the union of opcodes that appear anywhere.
    std::vector<std::string> ops;
    std::vector<prof::Series> series;
    for (const auto &net : nets) {
        const rt::NetRun &run = bench::netRun({net});
        series.push_back(prof::opBreakdown(run.totals));
        for (const auto &[op, frac] : series.back()) {
            if (std::find(ops.begin(), ops.end(), op) == ops.end())
                ops.push_back(op);
        }
    }
    std::sort(ops.begin(), ops.end());

    std::vector<std::vector<double>> values;   // [net][op]
    for (size_t n = 0; n < nets.size(); n++) {
        std::vector<double> col(ops.size(), 0.0);
        for (const auto &[op, frac] : series[n]) {
            const auto it = std::find(ops.begin(), ops.end(), op);
            col[static_cast<size_t>(it - ops.begin())] = frac;
        }
        values.push_back(col);
    }

    rt::printStacked(std::cout, "Fig 8: operation type breakdown", nets,
                     ops, values, /*as_percent=*/true);

    // Headline: top-4 {add, mad, mul, shl} share per network class.
    Table obs("Fig 8 headline: add+mad+mul+shl share");
    obs.header({"network", "share"});
    for (size_t n = 0; n < nets.size(); n++) {
        double s = 0.0;
        for (const auto &[op, frac] : series[n]) {
            if (op == "add" || op == "mad" || op == "mul" || op == "shl")
                s += frac;
        }
        obs.row({nets[n], Table::pct(s)});
        bench::registerValue("fig08/" + nets[n] + "/top4_share", "share",
                             s);
    }
    obs.print(std::cout);

    bench::registerSimSpeed();
    return bench::runHarness(argc, argv);
}
