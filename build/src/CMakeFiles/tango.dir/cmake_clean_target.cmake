file(REMOVE_RECURSE
  "libtango.a"
)
