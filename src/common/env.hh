/**
 * @file
 * Strict environment-variable parsing for the runtime TANGO_* knobs.
 *
 * A knob like TANGO_ENGINE_THREADS=abc used to be silently treated as 0
 * (strtol's soft failure), which reads as "knob applied" while actually
 * falling back to the default.  These helpers fatal() instead: a
 * malformed value is a user error the run must not paper over.
 */

#ifndef TANGO_COMMON_ENV_HH
#define TANGO_COMMON_ENV_HH

#include <cstdint>

namespace tango {

/**
 * Read a non-negative integer environment variable.
 * @return @p dflt when the variable is unset or empty; otherwise the
 *         parsed value.  fatal()s on anything that is not a plain
 *         decimal non-negative integer (garbage, signs, trailing
 *         characters, overflow).
 */
uint64_t envUint(const char *name, uint64_t dflt);

} // namespace tango

#endif // TANGO_COMMON_ENV_HH
