#include "common/thread_pool.hh"

#include <algorithm>

namespace tango {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; i++)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        workCv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty())
            return;   // stop_ set and nothing left to run
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        busy_++;
        lock.unlock();
        task();
        lock.lock();
        busy_--;
        if (queue_.empty() && busy_ == 0)
            idleCv_.notify_all();
    }
}

} // namespace tango
