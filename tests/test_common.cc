/**
 * @file
 * Unit tests for the common utilities: RNG determinism, StatSet
 * arithmetic and Table formatting.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace tango {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; i++) {
        const float v = r.uniform();
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 1.0f);
    }
}

TEST(Rng, UniformBounds)
{
    Rng r(9);
    for (int i = 0; i < 1000; i++) {
        const float v = r.uniform(-2.0f, 3.0f);
        EXPECT_GE(v, -2.0f);
        EXPECT_LT(v, 3.0f);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(11);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; i++) {
        const double v = r.gaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BelowStaysBelow)
{
    Rng r(5);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(r.below(17), 17u);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(StatSet, AddAndGet)
{
    StatSet s;
    EXPECT_EQ(s.get("x"), 0.0);
    s.add("x", 2.0);
    s.add("x", 3.0);
    EXPECT_EQ(s.get("x"), 5.0);
    EXPECT_TRUE(s.has("x"));
    EXPECT_FALSE(s.has("y"));
}

TEST(StatSet, MergeAccumulates)
{
    StatSet a, b;
    a.set("x", 1.0);
    a.set("y", 2.0);
    b.set("y", 3.0);
    b.set("z", 4.0);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 1.0);
    EXPECT_EQ(a.get("y"), 5.0);
    EXPECT_EQ(a.get("z"), 4.0);
}

TEST(StatSet, ScaleMultipliesEverything)
{
    StatSet s;
    s.set("a", 2.0);
    s.set("b", 3.0);
    s.scale(2.5);
    EXPECT_EQ(s.get("a"), 5.0);
    EXPECT_EQ(s.get("b"), 7.5);
}

TEST(StatSet, SumPrefix)
{
    StatSet s;
    s.set("op.add", 10.0);
    s.set("op.mul", 5.0);
    s.set("opx", 100.0);
    s.set("evt.l2", 7.0);
    EXPECT_EQ(s.sumPrefix("op."), 15.0);
    EXPECT_EQ(s.sumPrefix("evt."), 7.0);
    EXPECT_EQ(s.sumPrefix("zz."), 0.0);
}

TEST(Table, AlignsAndCounts)
{
    Table t("demo");
    t.header({"a", "bbbb"});
    t.row({"x", "1"});
    t.row({"yy", "22"});
    EXPECT_EQ(t.rows(), 2u);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("bbbb"), std::string::npos);
    EXPECT_NE(out.find("yy"), std::string::npos);
}

TEST(Table, CsvFormat)
{
    Table t("csv");
    t.header({"a", "b"});
    t.row({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("1,2"), std::string::npos);
    EXPECT_NE(os.str().find("# csv"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::pct(0.5, 1), "50.0%");
}

TEST(Logging, TimestampShape)
{
    // "YYYY-MM-DDTHH:MM:SS.mmmZ" — 24 characters, fixed layout.
    const std::string ts = logTimestampUtc();
    ASSERT_EQ(ts.size(), 24u);
    EXPECT_EQ(ts[4], '-');
    EXPECT_EQ(ts[10], 'T');
    EXPECT_EQ(ts[13], ':');
    EXPECT_EQ(ts[19], '.');
    EXPECT_EQ(ts[23], 'Z');
}

TEST(Logging, PlainLineHasTimestampAndTag)
{
    ::unsetenv("TANGO_LOG_JSON");
    const std::string line = logLine("warn", "disk full");
    ASSERT_GT(line.size(), 26u);
    EXPECT_EQ(line[0], '[');
    EXPECT_EQ(line[25], ']');
    EXPECT_EQ(line.substr(26), " warn: disk full");
}

TEST(Logging, JsonLineMode)
{
    ::setenv("TANGO_LOG_JSON", "1", 1);
    EXPECT_TRUE(logJsonMode());
    const std::string line = logLine("info", "a \"quoted\" \\ message");
    ::unsetenv("TANGO_LOG_JSON");
    EXPECT_FALSE(logJsonMode());

    json::Reader::Value v;
    ASSERT_NO_THROW(v = json::Reader(line).parse());
    ASSERT_EQ(v.kind, json::Reader::Value::Kind::Obj);
    EXPECT_EQ(v.strOr("level"), "info");
    EXPECT_EQ(v.strOr("msg"), "a \"quoted\" \\ message");
    EXPECT_EQ(v.strOr("ts").size(), 24u);
}

TEST(Logging, JsonModeRequiresExactlyOne)
{
    ::setenv("TANGO_LOG_JSON", "0", 1);
    EXPECT_FALSE(logJsonMode());
    ::setenv("TANGO_LOG_JSON", "yes", 1);
    EXPECT_FALSE(logJsonMode());
    ::unsetenv("TANGO_LOG_JSON");
}

} // namespace
} // namespace tango
