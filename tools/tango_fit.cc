/**
 * @file
 * tango-fit — fits (and validates) the estimate-tier performance models.
 *
 * Fit mode (default):
 *
 *   tango-fit --out weights/estimate [--policies LIST] [--platforms LIST]
 *
 * sweeps the suite networks plus randomized synthetic layers through the
 * simulation engine (estimate/dataset.hh), fits one model bundle per
 * (policy, platform) pair (estimate/model.hh) and writes them as
 * versioned JSON under --out.  --dataset-out archives the raw training
 * rows; --dataset refits from such an archive without re-simulating.
 *
 * Check mode:
 *
 *   tango-fit --check --weights DIR --nets alexnet,gru --max-p95 0.15
 *
 * loads a fitted bundle and, per network, (a) asserts every kernel
 * family the network uses validated a holdout p95 relative cycle error
 * within --max-p95, and (b) simulates ground truth and asserts the
 * estimate tier ranks the per-figType cycle totals in the same order —
 * the paper's per-layer-type breakdown (Fig 1) must not be reshuffled
 * by model error.  Exits nonzero on any violation (CI runs this).
 *
 * Sharing TANGO_ENGINE_CACHE between a fit and a later check recalls
 * the check's ground-truth simulations from the fit's sweep.
 */

#include <algorithm>
#include <sys/stat.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cli_common.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "estimate/dataset.hh"
#include "estimate/estimator.hh"
#include "estimate/model.hh"
#include "nn/models/models.hh"
#include "runtime/engine.hh"

namespace {

using namespace tango;

struct Options
{
    // Fit mode.
    std::string outDir;
    std::string datasetIn;      ///< refit from archived rows
    std::string datasetOut;     ///< archive swept rows
    std::vector<std::string> policies = {"bench"};
    std::vector<std::string> platforms = {"GP102"};
    estimate::SweepOptions sweep;
    bool reduced = false;

    // Check mode.
    bool check = false;
    std::string weightsDir;
    std::vector<std::string> nets;   ///< check targets (fit: sweep nets)
    std::string policy = "bench";
    std::string platform = "GP102";
    double maxP95 = 0.15;
};

void
usage(FILE *to)
{
    std::fprintf(to,
        "usage: tango-fit --out DIR [options]        (fit)\n"
        "       tango-fit --check --weights DIR [options]\n"
        "\n"
        "fit options:\n"
        "  --out DIR        write fitted bundles to DIR (required)\n"
        "  --policies LIST  policies to fit (default: bench)\n"
        "  --platforms LIST platforms to fit (default: GP102)\n"
        "  --nets LIST      sweep networks (default: every runnable)\n"
        "  --synthetic N    randomized single-layer networks (default %u)\n"
        "  --rnn-sweep N    extra RNN hidden sizes per kind (default %u)\n"
        "  --seed N         synthetic-shape seed (default 1)\n"
        "  --reduced        small sweep for CI (fewer nets/synthetics)\n"
        "  --dataset-out F  also archive the training rows as JSON\n"
        "  --dataset F      refit from an archived row file (no sweep)\n"
        "\n"
        "check options:\n"
        "  --weights DIR    fitted bundle directory (required)\n"
        "  --nets LIST      networks to validate (default: alexnet,gru)\n"
        "  --policy P       bundle policy (default bench)\n"
        "  --platform P     bundle platform (default GP102)\n"
        "  --max-p95 X      holdout p95 rel. cycle error bound "
        "(default 0.15)\n"
        "\n"
        "  -h, --help       this message\n",
        estimate::SweepOptions().synthetic,
        estimate::SweepOptions().rnnHiddenSweep);
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string item = list.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s expects a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            std::exit(0);
        } else if (arg == "--out") {
            opt.outDir = value();
        } else if (arg == "--policies") {
            opt.policies = splitList(tools::lower(value()));
        } else if (arg == "--platforms") {
            opt.platforms = splitList(value());
            for (const std::string &p : opt.platforms)
                tools::validatePlatform(p);
        } else if (arg == "--nets") {
            opt.nets = splitList(tools::lower(value()));
        } else if (arg == "--synthetic") {
            opt.sweep.synthetic = static_cast<uint32_t>(
                tools::parseUint("--synthetic", value()));
        } else if (arg == "--rnn-sweep") {
            opt.sweep.rnnHiddenSweep = static_cast<uint32_t>(
                tools::parseUint("--rnn-sweep", value()));
        } else if (arg == "--seed") {
            opt.sweep.seed = tools::parseUint("--seed", value());
        } else if (arg == "--reduced") {
            opt.reduced = true;
        } else if (arg == "--dataset-out") {
            opt.datasetOut = value();
        } else if (arg == "--dataset") {
            opt.datasetIn = value();
        } else if (arg == "--check") {
            opt.check = true;
        } else if (arg == "--weights") {
            opt.weightsDir = value();
        } else if (arg == "--policy") {
            opt.policy = tools::lower(value());
        } else if (arg == "--platform") {
            opt.platform = value();
            tools::validatePlatform(opt.platform);
        } else if (arg == "--max-p95") {
            char *end = nullptr;
            opt.maxP95 = std::strtod(value().c_str(), &end);
            if (!end || *end != '\0' || opt.maxP95 <= 0 || opt.maxP95 > 1)
                fatal("--max-p95 expects a number in (0, 1]");
        } else {
            usage(stderr);
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (opt.check) {
        if (opt.weightsDir.empty())
            fatal("--check requires --weights DIR");
        if (opt.nets.empty())
            opt.nets = {"alexnet", "gru"};
    } else {
        if (opt.outDir.empty() && opt.datasetOut.empty())
            fatal("fit mode requires --out DIR (or --dataset-out F)");
        if (opt.reduced) {
            // The CI sweep: enough coverage to fit every family the
            // check nets use, small enough to run on every push.
            if (opt.nets.empty())
                opt.nets = {"cifarnet", "alexnet", "gru", "lstm"};
            opt.sweep.synthetic = std::min(opt.sweep.synthetic, 16u);
            opt.sweep.rnnHiddenSweep =
                std::min(opt.sweep.rnnHiddenSweep, 2u);
        }
        opt.sweep.nets = opt.nets;
    }
    return opt;
}

/** mkdir -p: create @p dir and any missing parents. */
void
ensureDir(const std::string &dir)
{
    std::string prefix;
    for (size_t i = 0; i <= dir.size(); i++) {
        if (i < dir.size() && dir[i] != '/')
            continue;
        prefix = dir.substr(0, i);
        if (prefix.empty() || prefix == ".")
            continue;
        if (mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST)
            fatal("mkdir '%s': %s", prefix.c_str(),
                  std::strerror(errno));
    }
    if (prefix != dir && !dir.empty() &&
        mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
        fatal("mkdir '%s': %s", dir.c_str(), std::strerror(errno));
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream f(path, std::ios::trunc | std::ios::binary);
    if (!f)
        fatal("cannot write '%s'", path.c_str());
    f << text << "\n";
}

void
printBundle(const estimate::Bundle &bundle)
{
    std::printf("  %-10s %6s %6s %7s   %-17s %s\n", "family", "shapes",
                "train", "holdout", "table p50 / p95",
                "regress p50 / p95");
    for (int fi = 0; fi < estimate::kNumFamilies; fi++) {
        const auto fam = static_cast<estimate::Family>(fi);
        const estimate::FamilyModel &fm = bundle.family(fam);
        if (!fm.fitted) {
            std::printf("  %-10s (no rows)\n", estimate::familyName(fam));
            continue;
        }
        const estimate::TargetModel &cyc =
            fm.targets[static_cast<int>(estimate::Target::Cycles)];
        std::printf("  %-10s %6zu %6llu %7llu   %.3f / %.3f     "
                    "%.3f / %.3f\n",
                    estimate::familyName(fam), fm.table.size(),
                    static_cast<unsigned long long>(fm.trainRows),
                    static_cast<unsigned long long>(fm.holdoutRows),
                    fm.tableP50, fm.tableP95, cyc.p50, cyc.p95);
    }
}

int
fitMain(const Options &opt)
{
    struct Job
    {
        std::string policy, platform;
        std::vector<estimate::Row> rows;
    };
    std::vector<Job> work;

    if (!opt.datasetIn.empty()) {
        std::ifstream in(opt.datasetIn, std::ios::binary);
        if (!in)
            fatal("cannot read '%s'", opt.datasetIn.c_str());
        std::ostringstream ss;
        ss << in.rdbuf();
        Job job;
        std::string err;
        // Policy/platform travel inside the archive.
        json::Reader::Value v;
        try {
            v = json::Reader(ss.str()).parse();
        } catch (const std::exception &e) {
            fatal("%s: %s", opt.datasetIn.c_str(), e.what());
        }
        job.policy = v.strOr("policy");
        job.platform = v.strOr("platform");
        if (job.policy.empty() || job.platform.empty())
            fatal("%s: archive is missing its policy/platform",
                  opt.datasetIn.c_str());
        if (!estimate::rowsFromJson(ss.str(), job.rows, &err))
            fatal("%s: %s", opt.datasetIn.c_str(), err.c_str());
        work.push_back(std::move(job));
    } else {
        rt::Engine &engine = rt::Engine::global();
        for (const std::string &platform : opt.platforms) {
            for (const std::string &policy : opt.policies) {
                Job job;
                job.policy = policy;
                job.platform = platform;
                std::printf("sweeping %s/%s...\n", policy.c_str(),
                            platform.c_str());
                job.rows = estimate::generate(engine, opt.sweep, policy,
                                              platform);
                std::printf("  %zu training rows\n", job.rows.size());
                work.push_back(std::move(job));
            }
        }
    }

    if (!opt.outDir.empty())
        ensureDir(opt.outDir);
    if (!opt.datasetOut.empty() &&
        opt.datasetOut.find('/') != std::string::npos)
        ensureDir(opt.datasetOut.substr(0, opt.datasetOut.rfind('/')));

    for (const Job &job : work) {
        if (!opt.datasetOut.empty() && opt.datasetIn.empty()) {
            const std::string path =
                work.size() == 1
                    ? opt.datasetOut
                    : opt.datasetOut + "." + job.policy + "_" +
                          job.platform;
            writeFile(path, estimate::rowsToJson(job.rows, job.policy,
                                                 job.platform));
            std::printf("wrote %s\n", path.c_str());
        }
        const estimate::Bundle bundle =
            estimate::fit(job.rows, job.policy, job.platform);
        std::printf("fitted %s/%s:\n", job.policy.c_str(),
                    job.platform.c_str());
        printBundle(bundle);
        if (!opt.outDir.empty()) {
            const std::string path =
                opt.outDir + "/" +
                estimate::Bundle::fileName(job.policy, job.platform);
            writeFile(path, bundle.toJson());
            std::printf("wrote %s\n", path.c_str());
        }
    }
    return 0;
}

/** Per-figType cycle totals in first-appearance order. */
std::vector<std::pair<std::string, double>>
figCycles(const rt::NetRun &run)
{
    std::vector<std::pair<std::string, double>> out;
    for (const std::string &fig : run.figTypes()) {
        double cycles = 0.0;
        for (const rt::LayerRun &lr : run.layers) {
            if (lr.figType == fig)
                cycles += lr.gpuCycles();
        }
        out.emplace_back(fig, cycles);
    }
    return out;
}

/** FigTypes sorted by descending cycle total (the Fig 1 ranking). */
std::vector<std::string>
ranking(const std::vector<std::pair<std::string, double>> &totals)
{
    auto sorted = totals;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    std::vector<std::string> out;
    for (const auto &[fig, cycles] : sorted)
        out.push_back(fig);
    return out;
}

int
checkMain(const Options &opt)
{
    estimate::Estimator estimator(opt.weightsDir);
    rt::Engine &engine = rt::Engine::global();
    bool failed = false;

    for (const std::string &net : opt.nets) {
        tools::JobSpecArgs args;
        args.policy = opt.policy;
        args.platform = opt.platform;
        args.tier = "estimate";
        rt::JobSpec spec = tools::makeJobSpec(net, args);

        rt::NetRun est;
        std::string reason;
        if (!estimator.estimate(spec, est, &reason))
            fatal("%s: estimate tier refused: %s", net.c_str(),
                  reason.c_str());

        spec.tier = rt::Tier::Sim;
        const rt::NetRun &truth = *engine.submitJob(spec).future.get();

        // (a) Measured per-layer relative cycle error vs cycle-level
        // truth (same config => truth is bit-identical to the golden
        // fixtures).  Layers match by name.
        std::vector<double> errs;
        for (const rt::LayerRun &tl : truth.layers) {
            if (tl.kernels.empty())
                continue;
            for (const rt::LayerRun &el : est.layers) {
                if (el.name != tl.name)
                    continue;
                const double t = tl.gpuCycles();
                errs.push_back(std::abs(el.gpuCycles() - t) /
                               std::max(t, 1.0));
                break;
            }
        }
        std::sort(errs.begin(), errs.end());
        const auto pct = [&errs](double p) {
            return errs.empty()
                       ? 0.0
                       : errs[std::min(errs.size() - 1,
                                       size_t(p * double(errs.size() - 1) +
                                              0.5))];
        };
        const double p50 = pct(0.50), p95 = pct(0.95);
        if (errs.empty() || p95 > opt.maxP95) {
            std::printf("FAIL %s: per-layer cycle error p50 %.3f p95 "
                        "%.3f > bound %.3f (%zu layers; validated "
                        "bound %.3f)\n",
                        net.c_str(), p50, p95, opt.maxP95, errs.size(),
                        est.estErrP95);
            failed = true;
        } else {
            std::printf("ok   %s: per-layer cycle error p50 %.3f p95 "
                        "%.3f <= %.3f (%zu layers; validated bound "
                        "%.3f)\n",
                        net.c_str(), p50, p95, opt.maxP95, errs.size(),
                        est.estErrP95);
        }

        // (b) The estimate must rank per-figType cycle totals like the
        // cycle-level truth.
        const auto estTotals = figCycles(est);
        const auto truthTotals = figCycles(truth);
        const auto estRank = ranking(estTotals);
        const auto truthRank = ranking(truthTotals);
        if (estRank != truthRank) {
            std::printf("FAIL %s: estimate reorders the per-figType "
                        "cycle ranking\n", net.c_str());
            for (size_t i = 0; i < truthRank.size(); i++) {
                std::printf("   truth #%zu %-10s estimate #%zu %s\n", i,
                            truthRank[i].c_str(), i,
                            i < estRank.size() ? estRank[i].c_str()
                                               : "?");
            }
            failed = true;
        } else {
            std::printf("ok   %s: per-figType cycle ranking matches "
                        "(%zu figTypes)\n",
                        net.c_str(), truthRank.size());
        }

        // Informational: whole-net cycle error (not asserted — the
        // per-family holdout bound is the contract).
        double estCycles = 0.0, truthCycles = 0.0;
        for (const auto &[fig, c] : estTotals)
            estCycles += c;
        for (const auto &[fig, c] : truthTotals)
            truthCycles += c;
        const double rel =
            std::abs(estCycles - truthCycles) /
            std::max(truthCycles, 1.0);
        std::printf("     %s: total cycles est %.3e truth %.3e "
                    "(rel err %.3f)\n",
                    net.c_str(), estCycles, truthCycles, rel);
    }
    if (failed)
        fatal("tango-fit --check failed");
    std::printf("check passed\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    return opt.check ? checkMain(opt) : fitMain(opt);
}
