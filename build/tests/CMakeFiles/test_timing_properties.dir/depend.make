# Empty dependencies file for test_timing_properties.
# This may be replaced when dependencies are built.
