/**
 * @file
 * CPU reference-layer tests: hand-computed small cases for every layer
 * kind, plus algebraic properties (conv linearity, pooling bounds,
 * softmax normalization).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "nn/network.hh"

namespace tango::nn {
namespace {

Tensor
filled(std::vector<uint32_t> shape, std::initializer_list<float> vals)
{
    Tensor t(std::move(shape));
    size_t i = 0;
    for (float v : vals)
        t[i++] = v;
    return t;
}

Tensor
randomT(std::vector<uint32_t> shape, uint64_t seed)
{
    Tensor t(std::move(shape));
    Rng rng(seed);
    for (uint64_t i = 0; i < t.size(); i++)
        t[i] = rng.gaussian();
    return t;
}

TEST(ConvRef, IdentityKernel)
{
    // 1x1 kernel with weight 1 copies the input.
    Layer l;
    l.kind = LayerKind::Conv;
    l.C = 1;
    l.H = l.W = 3;
    l.K = 1;
    l.R = l.S = 1;
    l.P = l.Q = 3;
    l.bias = false;
    l.weights = filled({1, 1, 1, 1}, {1.0f});
    const Tensor in = randomT({1, 3, 3}, 1);
    const Tensor out = referenceForward(l, {&in});
    for (uint64_t i = 0; i < in.size(); i++)
        EXPECT_FLOAT_EQ(out[i], in[i]);
}

TEST(ConvRef, HandComputed3x3)
{
    // 3x3 input, 2x2 kernel of ones, stride 1, no pad -> 2x2 sums.
    Layer l;
    l.kind = LayerKind::Conv;
    l.C = 1;
    l.H = l.W = 3;
    l.K = 1;
    l.R = l.S = 2;
    l.P = l.Q = 2;
    l.bias = true;
    l.weights = filled({1, 1, 2, 2}, {1, 1, 1, 1});
    l.biasT = filled({1}, {0.5f});
    const Tensor in = filled({1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    const Tensor out = referenceForward(l, {&in});
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1 + 2 + 4 + 5 + 0.5f);
    EXPECT_FLOAT_EQ(out.at(0, 0, 1), 2 + 3 + 5 + 6 + 0.5f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 0), 4 + 5 + 7 + 8 + 0.5f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), 5 + 6 + 8 + 9 + 0.5f);
}

TEST(ConvRef, PaddingContributesZero)
{
    Layer l;
    l.kind = LayerKind::Conv;
    l.C = 1;
    l.H = l.W = 2;
    l.K = 1;
    l.R = l.S = 3;
    l.pad = 1;
    l.P = l.Q = 2;
    l.bias = false;
    l.weights = Tensor({1, 1, 3, 3});
    for (uint64_t i = 0; i < 9; i++)
        l.weights[i] = 1.0f;
    const Tensor in = filled({1, 2, 2}, {1, 2, 3, 4});
    const Tensor out = referenceForward(l, {&in});
    // Every output sees all four inputs minus what falls off the edge.
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1 + 2 + 3 + 4);
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), 1 + 2 + 3 + 4);
}

TEST(ConvRef, LinearityInInput)
{
    Layer l;
    l.kind = LayerKind::Conv;
    l.C = 2;
    l.H = l.W = 5;
    l.K = 3;
    l.R = l.S = 3;
    l.pad = 1;
    l.P = l.Q = 5;
    l.bias = false;
    l.weights = randomT({3, 2, 3, 3}, 2);
    const Tensor a = randomT({2, 5, 5}, 3);
    Tensor a2({2, 5, 5});
    for (uint64_t i = 0; i < a.size(); i++)
        a2[i] = 2.0f * a[i];
    const Tensor o1 = referenceForward(l, {&a});
    const Tensor o2 = referenceForward(l, {&a2});
    for (uint64_t i = 0; i < o1.size(); i++)
        EXPECT_NEAR(o2[i], 2.0f * o1[i], 1e-4f);
}

TEST(PoolRef, MaxHandComputed)
{
    Layer l;
    l.kind = LayerKind::Pool;
    l.C = 1;
    l.H = l.W = 4;
    l.R = l.S = 2;
    l.stride = 2;
    l.P = l.Q = 2;
    const Tensor in = filled({1, 4, 4}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                         11, 12, 13, 14, 15, 16});
    const Tensor out = referenceForward(l, {&in});
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 6);
    EXPECT_FLOAT_EQ(out.at(0, 0, 1), 8);
    EXPECT_FLOAT_EQ(out.at(0, 1, 0), 14);
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), 16);
}

TEST(PoolRef, MaxBoundsProperty)
{
    Layer l;
    l.kind = LayerKind::Pool;
    l.C = 3;
    l.H = l.W = 9;
    l.R = l.S = 3;
    l.stride = 2;
    l.P = l.Q = 4;
    const Tensor in = randomT({3, 9, 9}, 4);
    const Tensor out = referenceForward(l, {&in});
    float inMax = -1e30f, inMin = 1e30f;
    for (uint64_t i = 0; i < in.size(); i++) {
        inMax = std::max(inMax, in[i]);
        inMin = std::min(inMin, in[i]);
    }
    for (uint64_t i = 0; i < out.size(); i++) {
        EXPECT_LE(out[i], inMax);
        EXPECT_GE(out[i], inMin);
    }
}

TEST(PoolRef, GlobalAverage)
{
    Layer l;
    l.kind = LayerKind::Pool;
    l.C = 2;
    l.H = l.W = 2;
    l.globalAvg = true;
    l.avg = true;
    l.P = l.Q = 1;
    const Tensor in = filled({2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
    const Tensor out = referenceForward(l, {&in});
    EXPECT_FLOAT_EQ(out[0], 2.5f);
    EXPECT_FLOAT_EQ(out[1], 25.0f);
}

TEST(FcRef, HandComputed)
{
    Layer l;
    l.kind = LayerKind::FC;
    l.inN = 3;
    l.outN = 2;
    l.weights = filled({2, 3}, {1, 2, 3, 4, 5, 6});
    l.biasT = filled({2}, {0.5f, -0.5f});
    const Tensor in = filled({3}, {1, 1, 1});
    const Tensor out = referenceForward(l, {&in});
    EXPECT_FLOAT_EQ(out[0], 6.5f);
    EXPECT_FLOAT_EQ(out[1], 14.5f);
}

TEST(FcRef, ReluClamps)
{
    Layer l;
    l.kind = LayerKind::FC;
    l.inN = 1;
    l.outN = 1;
    l.relu = true;
    l.weights = filled({1, 1}, {-1.0f});
    l.biasT = filled({1}, {0.0f});
    const Tensor in = filled({1}, {5.0f});
    EXPECT_FLOAT_EQ(referenceForward(l, {&in})[0], 0.0f);
}

TEST(LrnRef, UniformInputNormalizes)
{
    Layer l;
    l.kind = LayerKind::LRN;
    l.C = 5;
    l.H = l.W = 1;
    l.localSize = 5;
    Tensor in({5, 1, 1});
    for (int c = 0; c < 5; c++)
        in[c] = 2.0f;
    const Tensor out = referenceForward(l, {&in});
    // Middle channel sees all five: sum = 5*4 = 20.
    const float scale = l.lrnK + l.alpha / 5.0f * 20.0f;
    EXPECT_NEAR(out.at(2, 0, 0), 2.0f / std::pow(scale, l.beta), 1e-6f);
}

TEST(BatchNormRef, NormalizesToStandard)
{
    Layer l;
    l.kind = LayerKind::BatchNorm;
    l.C = 1;
    l.H = 1;
    l.W = 2;
    l.mean = filled({1}, {2.0f});
    l.var = filled({1}, {4.0f});
    const Tensor in = filled({1, 1, 2}, {2.0f, 6.0f});
    const Tensor out = referenceForward(l, {&in});
    EXPECT_NEAR(out[0], 0.0f, 1e-5f);
    EXPECT_NEAR(out[1], 4.0f / std::sqrt(4.0f + l.eps), 1e-4f);
}

TEST(ScaleRef, AffinePerChannel)
{
    Layer l;
    l.kind = LayerKind::Scale;
    l.C = 2;
    l.H = 1;
    l.W = 1;
    l.gamma = filled({2}, {2.0f, 3.0f});
    l.betaT = filled({2}, {1.0f, -1.0f});
    const Tensor in = filled({2, 1, 1}, {5.0f, 5.0f});
    const Tensor out = referenceForward(l, {&in});
    EXPECT_FLOAT_EQ(out[0], 11.0f);
    EXPECT_FLOAT_EQ(out[1], 14.0f);
}

TEST(EltwiseRef, AddsAndOptionallyClamps)
{
    Layer l;
    l.kind = LayerKind::Eltwise;
    l.C = 1;
    l.H = 1;
    l.W = 2;
    l.inputs = {-1, -1};
    const Tensor a = filled({1, 1, 2}, {1.0f, -5.0f});
    const Tensor b = filled({1, 1, 2}, {2.0f, 2.0f});
    Tensor out = referenceForward(l, {&a, &b});
    EXPECT_FLOAT_EQ(out[0], 3.0f);
    EXPECT_FLOAT_EQ(out[1], -3.0f);
    l.relu = true;
    out = referenceForward(l, {&a, &b});
    EXPECT_FLOAT_EQ(out[1], 0.0f);
}

TEST(SoftmaxRef, NormalizesAndOrders)
{
    Layer l;
    l.kind = LayerKind::Softmax;
    l.inN = l.outN = 4;
    const Tensor in = filled({4}, {1.0f, 3.0f, 2.0f, 0.0f});
    const Tensor out = referenceForward(l, {&in});
    float sum = 0.0f;
    for (int i = 0; i < 4; i++)
        sum += out[i];
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_EQ(out.argmax(), 1u);
    EXPECT_GT(out[2], out[0]);
}

TEST(SoftmaxRef, LargeLogitsStayFinite)
{
    Layer l;
    l.kind = LayerKind::Softmax;
    l.inN = l.outN = 3;
    const Tensor in = filled({3}, {1000.0f, 999.0f, -1000.0f});
    const Tensor out = referenceForward(l, {&in});
    EXPECT_TRUE(std::isfinite(out[0]));
    EXPECT_NEAR(out[0] + out[1] + out[2], 1.0f, 1e-5f);
}

TEST(ConcatRef, StacksChannels)
{
    Layer l;
    l.kind = LayerKind::Concat;
    l.K = 3;
    l.P = l.Q = 2;
    l.inputs = {-1, -1};
    const Tensor a = filled({1, 2, 2}, {1, 2, 3, 4});
    const Tensor b = filled({2, 2, 2}, {5, 6, 7, 8, 9, 10, 11, 12});
    const Tensor out = referenceForward(l, {&a, &b});
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1);
    EXPECT_FLOAT_EQ(out.at(1, 0, 0), 5);
    EXPECT_FLOAT_EQ(out.at(2, 1, 1), 12);
}

TEST(LayerMeta, MacsAndOutputSize)
{
    Layer conv;
    conv.kind = LayerKind::Conv;
    conv.C = 3;
    conv.H = conv.W = 8;
    conv.K = 16;
    conv.R = conv.S = 3;
    conv.P = conv.Q = 8;
    EXPECT_EQ(conv.outputSize(), 16u * 64);
    EXPECT_EQ(conv.macs(), 16ull * 64 * 3 * 9);

    Layer fc;
    fc.kind = LayerKind::FC;
    fc.inN = 100;
    fc.outN = 10;
    EXPECT_EQ(fc.outputSize(), 10u);
    EXPECT_EQ(fc.macs(), 1000u);
}

} // namespace
} // namespace tango::nn
