# Empty compiler generated dependencies file for characterize.
# This may be replaced when dependencies are built.
