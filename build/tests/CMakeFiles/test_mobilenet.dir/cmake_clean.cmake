file(REMOVE_RECURSE
  "CMakeFiles/test_mobilenet.dir/test_mobilenet.cc.o"
  "CMakeFiles/test_mobilenet.dir/test_mobilenet.cc.o.d"
  "test_mobilenet"
  "test_mobilenet.pdb"
  "test_mobilenet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mobilenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
