file(REMOVE_RECURSE
  "CMakeFiles/imagenet_classify.dir/imagenet_classify.cpp.o"
  "CMakeFiles/imagenet_classify.dir/imagenet_classify.cpp.o.d"
  "imagenet_classify"
  "imagenet_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imagenet_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
