/**
 * @file
 * Logging and error-reporting helpers in the gem5 fatal/panic/warn style.
 *
 * fatal()  — the run cannot continue because of a user error (bad config,
 *            invalid arguments).  Exits with status 1.
 * panic()  — an internal invariant was violated (a bug in tango itself).
 *            Aborts so a core dump / debugger can catch it.
 * warn()   — something is suspicious but the run continues.
 * inform() — plain status output.
 */

#ifndef TANGO_COMMON_LOGGING_HH
#define TANGO_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace tango {

/** Terminate the run due to a user-facing error (exit(1)). */
[[noreturn]] void fatal(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Terminate the run due to an internal bug (abort()). */
[[noreturn]] void panic(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning; the run continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verbose();

/** panic() unless the condition holds. */
#define TANGO_ASSERT(cond, ...)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            ::tango::panic("assertion failed: %s: " #cond, __func__);     \
    } while (0)

} // namespace tango

#endif // TANGO_COMMON_LOGGING_HH
