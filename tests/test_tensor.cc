/**
 * @file
 * Tensor and device-memory unit tests.
 */

#include <gtest/gtest.h>

#include "nn/tensor.hh"
#include "sim/memory.hh"

namespace tango {
namespace {

TEST(Tensor, ShapeAndSize)
{
    nn::Tensor t({3, 4, 5});
    EXPECT_EQ(t.size(), 60u);
    EXPECT_EQ(t.bytes(), 240u);
    EXPECT_EQ(t.dim(0), 3u);
    EXPECT_EQ(t.dim(1), 4u);
    EXPECT_EQ(t.dim(2), 5u);
    EXPECT_EQ(t.dim(7), 1u);   // missing dims read as 1
    EXPECT_EQ(t.shapeStr(), "3x4x5");
}

TEST(Tensor, ZeroInitialized)
{
    nn::Tensor t({10});
    for (uint64_t i = 0; i < t.size(); i++)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, At3AndAt4RowMajor)
{
    nn::Tensor t({2, 3, 4});
    t.at(1, 2, 3) = 7.0f;
    EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 7.0f);

    nn::Tensor w({2, 3, 4, 5});
    w.at4(1, 2, 3, 4) = 9.0f;
    EXPECT_EQ(w[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, Argmax)
{
    nn::Tensor t({5});
    t[3] = 2.5f;
    t[1] = 1.0f;
    EXPECT_EQ(t.argmax(), 3u);
}

TEST(Tensor, EmptyDefault)
{
    nn::Tensor t;
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.shapeStr(), "scalar");
}

TEST(DeviceMemory, AllocateAligned)
{
    sim::DeviceMemory mem(1 << 20);
    const uint32_t a = mem.allocate(100);
    const uint32_t b = mem.allocate(1);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_EQ(b - a, 256u);
}

TEST(DeviceMemory, PeakTracksHighWater)
{
    sim::DeviceMemory mem(1 << 20);
    mem.allocate(1000);
    const uint64_t peak1 = mem.peakUsed();
    mem.reset();
    EXPECT_EQ(mem.peakUsed(), peak1);   // reset keeps the peak
    mem.allocate(100);
    EXPECT_EQ(mem.peakUsed(), peak1);
    mem.resetAll();
    EXPECT_LT(mem.peakUsed(), peak1);
}

TEST(DeviceMemory, ReadWriteRoundTrip)
{
    sim::DeviceMemory mem(1 << 20);
    const uint32_t a = mem.allocate(64);
    mem.write<float>(a, 3.5f);
    mem.write<uint32_t>(a + 4, 42);
    EXPECT_EQ(mem.read<float>(a), 3.5f);
    EXPECT_EQ(mem.read<uint32_t>(a + 4), 42u);
}

TEST(DeviceMemory, CopyInOut)
{
    sim::DeviceMemory mem(1 << 20);
    const uint32_t a = mem.allocate(64);
    float src[4] = {1, 2, 3, 4};
    mem.copyIn(a, src, sizeof(src));
    float dst[4] = {};
    mem.copyOut(dst, a, sizeof(dst));
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(dst[i], src[i]);
}

TEST(DeviceMemory, UntouchedPagesReadZero)
{
    sim::DeviceMemory mem(1 << 20);
    const uint32_t a = mem.allocate(4096);
    EXPECT_EQ(mem.read<uint64_t>(a + 1000), 0u);
}

TEST(DeviceMemory, OutOfMemoryIsFatal)
{
    sim::DeviceMemory mem(1 << 16);
    EXPECT_EXIT(mem.allocate(1 << 20), ::testing::ExitedWithCode(1),
                "out of memory");
}

} // namespace
} // namespace tango
