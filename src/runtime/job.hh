/**
 * @file
 * rt::JobSpec — THE single description of one simulation job, and
 * rt::JobResult — the answer a job produces.
 *
 * Every entry point used to assemble net x policy x platform arguments
 * its own way (tango-run's Options struct, tango-trace's, the bench
 * binaries' RunKey tuples, ad-hoc gru/lstm special cases).  JobSpec
 * replaces all of that with one value type that is simultaneously:
 *
 *  - the parse target of the CLI tools (tools/cli_common),
 *  - the wire format of the tango-serve daemon (serve/protocol), via
 *    canonical JSON (de)serialization,
 *  - the cache-key source of the rt::Engine run cache (rt::CacheKey):
 *    two JobSpecs that describe the same simulation produce the same
 *    key, no matter how their JSON fields were ordered, and a JobSpec
 *    with all-default extras keys identically to the legacy RunKey so
 *    serve traffic and bench sweeps share one cache.
 *
 * A JobSpec names either a registered RunPolicy ("bench", "mem", ...)
 * or carries a full inline RunPolicy for custom sweeps; inline policies
 * key by content digest.
 */

#ifndef TANGO_RUNTIME_JOB_HH
#define TANGO_RUNTIME_JOB_HH

#include <string>

#include "runtime/runtime.hh"
#include "sim/config.hh"

namespace tango::rt {

/**
 * Accuracy tier of one job — how much fidelity the caller is paying for.
 * Higher tiers answer faster by giving up cycle-level guarantees:
 *  - Sim: full cycle-level simulation (the default; the only tier whose
 *    results are bit-exact against the golden fixtures).
 *  - Replay: cycle-level simulation with launch memoization forced on —
 *    repeated identical launches replay their steady-state statistics.
 *  - Estimate: no simulation at all; the fitted per-kernel-family models
 *    (estimate/estimator.hh) answer from layer shapes alone, with the
 *    bundle's validated error bounds attached.  Falls back to Replay
 *    semantics when the models cannot honour the request.
 */
enum class Tier : uint8_t
{
    Sim,
    Replay,
    Estimate
};

/** @return the tier's wire name: "sim" | "replay" | "estimate". */
const char *tierName(Tier t);

/** Parse a wire name; @return false on an unknown name. */
bool tierFromName(const std::string &name, Tier &out);

/**
 * The Engine's cache-key form of a job: a canonical, human-readable
 * string (e.g. "alexnet/GP102/l1=64K/gto/bench" or
 * "gru/TX1/l1=off/lrr/exact/seq=512/fn").  Derived exclusively from
 * JobSpec::cacheKey() so every front end keys the same simulation the
 * same way.
 */
struct CacheKey
{
    std::string str;

    bool operator<(const CacheKey &o) const { return str < o.str; }
    bool operator==(const CacheKey &o) const { return str == o.str; }
};

/** One simulation job: which network, under which policy, on which
 *  platform, with which execution flags. */
struct JobSpec
{
    /** Network name (nn::models::runnableNames()). */
    std::string net;

    /** Named RunPolicy ("bench", "mem", "stall", "exact", or anything
     *  registered); ignored when hasInlinePolicy is set. */
    std::string policy = "bench";

    /** Carry a full RunPolicy instead of a registry name (custom
     *  sweeps).  Serialized as "runPolicy" on the wire. */
    bool hasInlinePolicy = false;
    RunPolicy inlinePolicy;

    /** Platform: GP102 | GK210 | TX1. */
    std::string platform = "GP102";
    /** L1D size in bytes; 0 = bypassed. */
    uint32_t l1dBytes = 64 * 1024;
    /** Warp scheduler. */
    sim::SchedPolicy sched = sim::SchedPolicy::GTO;

    /** RNN sequence length; 0 = the model default
     *  (nn::models::kDefaultRnnSeqLen).  Ignored for CNNs. */
    uint32_t seqLen = 0;

    /** Accuracy tier (see Tier).  The default, Tier::Sim, is elided
     *  from the cache key and the wire format, so sim-tier jobs key and
     *  serialize exactly as they did before tiers existed. */
    Tier tier = Tier::Sim;
    /** Estimate-tier only: the relative cycle error the caller will
     *  accept, in (0, 1]; 0 = take whatever the models validated.  A
     *  bound tighter than the fitted models' holdout p95 makes the job
     *  fall back to simulation. */
    double maxRelErr = 0.0;

    // Execution flags, folded into the resolved policy.
    bool functional = false;   ///< upload weights, compute real outputs
    bool profile = false;      ///< per-PC attribution (SimPolicy::profile)
    /** Record a cycle-level trace.  An instruction to the *driver* (the
     *  tool installs a trace sink around the run); the simulation
     *  itself, its statistics and its cache key are unaffected.
     *  tango-serve rejects traced jobs — event streams are orders of
     *  magnitude larger than stats and belong in tango-trace. */
    bool trace = false;

    /** @return "" if the spec is runnable, else a one-line reason
     *  (unknown net/policy/platform, out-of-range seqLen).  Check this
     *  before run()/submitJob(): running an invalid spec fatal()s. */
    std::string validate() const;

    /** @return the effective RunPolicy: the named (or inline) policy
     *  with the functional/profile flags folded in. */
    RunPolicy resolvedPolicy() const;

    /** @return the GpuConfig this spec describes. */
    sim::GpuConfig gpuConfig() const;

    /** Canonical cache key.  Defaults are normalized away (a CNN's
     *  seqLen, an RNN's explicit default seqLen) so equivalent specs
     *  collide; the base form matches RunKey::str() exactly. */
    CacheKey cacheKey() const;

    /** Canonical JSON (fixed field order; inline policies serialized in
     *  full).  The wire format of tango-serve. */
    std::string toJson() const;

    /**
     * Parse a JobSpec from JSON in any field order; unknown fields are
     * ignored (forward compatibility).  Parsing does NOT validate() —
     * a syntactically well-formed spec for an unknown net parses fine.
     * @return false (out untouched) on malformed JSON or field types,
     *         with a reason in @p err if given.
     */
    static bool fromJson(const std::string &text, JobSpec &out,
                         std::string *err = nullptr);
};

/** What one job produced: a NetRun on success, an error otherwise,
 *  plus how the serve layer satisfied the request. */
struct JobResult
{
    bool ok = false;
    std::string error;        ///< set when !ok (validation, queue-full, ...)
    /** How the request was served: "sim" (fresh simulation), "join"
     *  (deduplicated onto an identical in-flight job), "mem"/"disk"
     *  (cache hits), or "" for local runs. */
    std::string served;
    double latencyMs = 0.0;   ///< server-side service time
    NetRun run;               ///< valid when ok

    std::string toJson() const;
    static bool fromJson(const std::string &text, JobResult &out,
                         std::string *err = nullptr);
};

/**
 * Run one job on @p gpu (which must already be configured to
 * spec.gpuConfig(); rt::Engine workers guarantee this).  Builds the
 * model (honouring seqLen), generates weights only when the resolved
 * policy needs functional outputs, and runs it.  fatal()s on an invalid
 * spec — validate() first.
 */
NetRun runJob(sim::Gpu &gpu, const JobSpec &spec);

} // namespace tango::rt

#endif // TANGO_RUNTIME_JOB_HH
