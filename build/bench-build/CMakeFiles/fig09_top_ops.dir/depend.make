# Empty dependencies file for fig09_top_ops.
# This may be replaced when dependencies are built.
