/**
 * @file
 * Platform-preset and power-model tests: Table II invariants across the
 * three machines, and conservation properties of the component
 * breakdown.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/power.hh"

namespace tango::sim {
namespace {

TEST(Config, TableIIValues)
{
    const GpuConfig gk = keplerGK210();
    EXPECT_EQ(gk.numSms * gk.coresPerSm, 2880u);   // paper: 2880 cores
    const GpuConfig tx = maxwellTX1();
    EXPECT_EQ(tx.numSms * tx.coresPerSm, 256u);    // paper: 256 cores
    const GpuConfig gp = pascalGP102();
    EXPECT_EQ(gp.numSms * gp.coresPerSm, 3584u);   // paper: 3584 cores
    EXPECT_EQ(gp.l1dBytes, 64u * 1024);            // paper: 64KB default
    EXPECT_EQ(gp.scheduler, SchedPolicy::GTO);     // paper: gto default
}

TEST(Config, PlatformOrdering)
{
    // Server > simulator-desktop > mobile in every capacity.
    const GpuConfig gk = keplerGK210(), tx = maxwellTX1(),
                    gp = pascalGP102();
    EXPECT_GT(gk.regFileBytesPerSm, tx.regFileBytesPerSm);
    EXPECT_GT(gp.l2Bytes, tx.l2Bytes);
    EXPECT_GT(gk.l2Bytes, tx.l2Bytes);
    EXPECT_GT(gp.coreClockGhz, gk.coreClockGhz);
    EXPECT_LT(tx.power.idleCoreW, gk.power.idleCoreW);
    // Mobile memory is slower.
    EXPECT_GT(tx.dramIssueInterval, gp.dramIssueInterval);
}

TEST(Config, SchedulerNames)
{
    EXPECT_STREQ(schedName(SchedPolicy::GTO), "gto");
    EXPECT_STREQ(schedName(SchedPolicy::LRR), "lrr");
    EXPECT_STREQ(schedName(SchedPolicy::TLV), "tlv");
}

TEST(Power, ComponentNamesMatchFig5Legend)
{
    // The paper's Fig 5 legend vocabulary.
    EXPECT_STREQ(powerCompName(PowerComp::RF), "RFP");
    EXPECT_STREQ(powerCompName(PowerComp::L2C), "L2CP");
    EXPECT_STREQ(powerCompName(PowerComp::IDLE_CORE), "IDLE_COREP");
    EXPECT_STREQ(powerCompName(PowerComp::CONST_DYNAMIC),
                 "CONST_DYNAMICP");
    for (size_t i = 0; i < numPowerComps; i++) {
        EXPECT_STRNE(powerCompName(static_cast<PowerComp>(i)), "?");
    }
}

TEST(Power, BreakdownIsLinearInEvents)
{
    const GpuConfig cfg = pascalGP102();
    StatSet a;
    a.set("evt.rf_operand", 1000.0);
    a.set("evt.sp", 400.0);
    a.set("evt.l2", 50.0);
    StatSet b = a;
    b.scale(3.0);
    const PowerBreakdown pa = computeBreakdown(a, cfg, 0.0, 1.0);
    const PowerBreakdown pb = computeBreakdown(b, cfg, 0.0, 1.0);
    // With zero cycles there is no static energy; dynamic is linear.
    EXPECT_NEAR(pb.totalJ(), 3.0 * pa.totalJ(), pa.totalJ() * 1e-12);
}

TEST(Power, StaticEnergyScalesWithTime)
{
    const GpuConfig cfg = pascalGP102();
    StatSet empty;
    const double cyc = cfg.coreClockGhz * 1e9;   // one second
    const PowerBreakdown one = computeBreakdown(empty, cfg, cyc, 1.0);
    const PowerBreakdown two = computeBreakdown(empty, cfg, 2 * cyc, 1.0);
    EXPECT_NEAR(two.totalJ(), 2.0 * one.totalJ(), one.totalJ() * 1e-12);
    // One second of idle: total equals the static power in watts.
    const double staticW = cfg.power.idleCoreW * cfg.numSms +
                           cfg.power.constDynamicW + cfg.power.boardStaticW;
    EXPECT_NEAR(one.totalJ(), staticW, staticW * 1e-9);
}

TEST(Power, MergeAccumulates)
{
    PowerBreakdown a, b;
    a.energyJ[0] = 1.0;
    b.energyJ[0] = 2.0;
    b.energyJ[3] = 5.0;
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.energyJ[0], 3.0);
    EXPECT_DOUBLE_EQ(a.energyJ[3], 5.0);
    EXPECT_DOUBLE_EQ(a.totalJ(), 8.0);
}

TEST(Power, AveragePower)
{
    PowerBreakdown b;
    b.energyJ[0] = 10.0;
    EXPECT_DOUBLE_EQ(averagePowerW(b, 2.0), 5.0);
    EXPECT_DOUBLE_EQ(averagePowerW(b, 0.0), 0.0);
}

TEST(Power, EveryEventKindContributes)
{
    // Each evt.* counter must map to some component (no silently dropped
    // energy).
    const GpuConfig cfg = pascalGP102();
    const char *events[] = {"evt.ib",   "evt.ic",   "evt.l1d",
                            "evt.cc",   "evt.shrd", "evt.rf_operand",
                            "evt.sp",   "evt.fpu",  "evt.sfu",
                            "evt.sched", "evt.l2",  "evt.mc",
                            "evt.noc",  "evt.dram", "evt.pipe"};
    for (const char *e : events) {
        StatSet s;
        s.set(e, 1000.0);
        const PowerBreakdown pb = computeBreakdown(s, cfg, 0.0, 1.0);
        EXPECT_GT(pb.totalJ(), 0.0) << e;
    }
}

} // namespace
} // namespace tango::sim
