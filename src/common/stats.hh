/**
 * @file
 * A tiny named-counter statistics registry, in the spirit of gem5's stats
 * package.  Components register scalar counters by name; reports iterate the
 * registry.  Counters are doubles so scaled (sampled) statistics stay exact.
 */

#ifndef TANGO_COMMON_STATS_HH
#define TANGO_COMMON_STATS_HH

#include <map>
#include <string>
#include <vector>

namespace tango {

/** An ordered map of named scalar statistics with arithmetic helpers. */
class StatSet
{
  public:
    /** Add @p v to counter @p name (creating it at zero). */
    void add(const std::string &name, double v);

    /** Set counter @p name to @p v. */
    void set(const std::string &name, double v);

    /** @return value of @p name, or 0 if absent. */
    double get(const std::string &name) const;

    /** @return whether the counter exists. */
    bool has(const std::string &name) const;

    /** Accumulate every counter of @p other into this set. */
    void merge(const StatSet &other);

    /** Multiply every counter by @p factor (used by CTA sampling). */
    void scale(double factor);

    /** @return all counters in name order. */
    const std::map<std::string, double> &all() const { return stats_; }

    /** Sum of all counters whose name starts with @p prefix. */
    double sumPrefix(const std::string &prefix) const;

    /** Remove every counter. */
    void clear() { stats_.clear(); }

  private:
    std::map<std::string, double> stats_;
};

} // namespace tango

#endif // TANGO_COMMON_STATS_HH
