# Empty dependencies file for fig06_gpu_vs_fpga_energy.
# This may be replaced when dependencies are built.
