/**
 * @file
 * Stock forecast: the paper's RNN scenario.  Both recurrent models (GRU
 * and LSTM) predict the next bitcoin price from the past two days'
 * (scaled) prices — here a deterministic synthetic price walk — with the
 * whole recurrence executed on the simulated GPU and checked against the
 * CPU reference.
 */

#include <cstdio>

#include "common/logging.hh"
#include "nn/models/models.hh"
#include "nn/weights.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

namespace {

void
forecast(tango::nn::RnnModel rnn)
{
    using namespace tango;

    nn::initWeights(rnn);
    const std::string name = rnn.name;
    const uint32_t seqLen = rnn.seqLen;
    const nn::AnyModel model(std::move(rnn));

    sim::Gpu gpu(sim::maxwellTX1());   // the paper's mobile platform
    rt::Runtime runtime(gpu);

    rt::RunPolicy policy;
    policy.sim.fullSim = true;
    policy.functional = true;
    policy.check = true;
    policy.tolerance = 1e-3f;

    // A longer walk; each prediction uses a sliding 2-step window.
    const auto walk = nn::models::makeStockSequence(10);
    std::printf("%s: scaled price walk:", name.c_str());
    for (float p : walk)
        std::printf(" %.3f", p);
    std::printf("\n");

    double timeUs = 0.0, energyMj = 0.0;
    for (size_t t = 0; t + seqLen < walk.size(); t++) {
        const std::vector<float> window(walk.begin() + t,
                                        walk.begin() + t + seqLen);
        float pred = 0.0f;
        const rt::NetRun run = runtime.run(
            model, policy, {.sequence = &window, .prediction = &pred});
        if (run.checkFailures) {
            warn("%s: simulation/reference mismatch", name.c_str());
            std::exit(1);
        }
        timeUs += run.totalTimeSec * 1e6;
        energyMj += run.totalEnergyJ * 1e3;
        std::printf("  day %2zu..%zu -> predict %.4f (actual next: "
                    "%.4f)\n",
                    t, t + seqLen - 1, pred, walk[t + seqLen]);
    }
    std::printf("%s on TX1: %.1f us simulated inference time, %.3f mJ "
                "total\n\n",
                name.c_str(), timeUs, energyMj);
}

} // namespace

int
main()
{
    tango::setVerbose(false);
    // The paper's exact Table I configuration: a two-day window.
    forecast(tango::nn::models::buildGru(2));
    forecast(tango::nn::models::buildLstm(2));
    std::printf("stock_forecast: OK\n");
    return 0;
}
