#include "serve/protocol.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/json.hh"

namespace tango::serve {

namespace {

using json::Reader;

bool
readAll(int fd, void *buf, size_t n)
{
    char *p = static_cast<char *>(buf);
    while (n) {
        const ssize_t got = ::read(fd, p, n);
        if (got == 0)
            return false;
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += got;
        n -= static_cast<size_t>(got);
    }
    return true;
}

bool
writeAll(int fd, const void *buf, size_t n)
{
    const char *p = static_cast<const char *>(buf);
    while (n) {
        const ssize_t put = ::write(fd, p, n);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += put;
        n -= static_cast<size_t>(put);
    }
    return true;
}

void
setErr(std::string *err, const std::string &why)
{
    if (err)
        *err = why;
}

} // namespace

FrameStatus
readFrame(int fd, std::string &payload, uint32_t maxBytes)
{
    uint8_t hdr[4];
    // Distinguish a clean close (EOF before any header byte) from a
    // truncated frame: the former is how clients hang up.
    const ssize_t first = ::read(fd, hdr, 1);
    if (first == 0)
        return FrameStatus::Eof;
    if (first < 0)
        return errno == EINTR ? readFrame(fd, payload, maxBytes)
                              : FrameStatus::Error;
    if (!readAll(fd, hdr + 1, 3))
        return FrameStatus::Error;
    const uint32_t len = (uint32_t(hdr[0]) << 24) | (uint32_t(hdr[1]) << 16) |
                         (uint32_t(hdr[2]) << 8) | uint32_t(hdr[3]);
    if (len > maxBytes)
        return FrameStatus::Error;
    payload.resize(len);
    if (len && !readAll(fd, payload.data(), len))
        return FrameStatus::Error;
    return FrameStatus::Ok;
}

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    const uint32_t len = static_cast<uint32_t>(payload.size());
    const uint8_t hdr[4] = {uint8_t(len >> 24), uint8_t(len >> 16),
                            uint8_t(len >> 8), uint8_t(len)};
    return writeAll(fd, hdr, 4) && writeAll(fd, payload.data(), len);
}

// ------------------------------------------------------------- requests

std::string
makeRunRequest(uint64_t id, const rt::JobSpec &job)
{
    std::string out = "{\"type\":\"run\",\"id\":";
    json::appendU64(out, id);
    out += ",\"job\":";
    out += job.toJson();
    out += '}';
    return out;
}

std::string
makeStatsRequest()
{
    return "{\"type\":\"stats\"}";
}

std::string
makeMetricsRequest()
{
    return "{\"type\":\"metrics\"}";
}

std::string
makePingRequest()
{
    return "{\"type\":\"ping\"}";
}

std::string
makeShutdownRequest()
{
    return "{\"type\":\"shutdown\"}";
}

bool
parseRequest(const std::string &text, Request &out, std::string *err)
{
    Reader::Value v;
    try {
        v = Reader(text).parse();
    } catch (const std::exception &e) {
        setErr(err, e.what());
        return false;
    }
    if (v.kind != Reader::Value::Kind::Obj) {
        setErr(err, "request must be a JSON object");
        return false;
    }
    const std::string type = v.strOr("type");
    Request req;
    if (type == "run") {
        req.type = Request::Type::Run;
        req.id = v.u64Or("id", 0);
        const Reader::Value *job = v.find("job");
        if (!job || job->kind != Reader::Value::Kind::Obj) {
            setErr(err, "run request is missing its 'job' object");
            return false;
        }
        // Re-serialize just the job subtree and hand it to the one
        // canonical JobSpec parser, so run requests and local tools
        // accept exactly the same specs.
        std::string body;
        json::appendValue(body, *job);
        if (!rt::JobSpec::fromJson(body, req.job, err))
            return false;
    } else if (type == "stats") {
        req.type = Request::Type::Stats;
    } else if (type == "metrics") {
        req.type = Request::Type::Metrics;
    } else if (type == "ping") {
        req.type = Request::Type::Ping;
    } else if (type == "shutdown") {
        req.type = Request::Type::Shutdown;
    } else {
        setErr(err, "unknown request type '" + type + "'");
        return false;
    }
    out = std::move(req);
    return true;
}

// ------------------------------------------------------------ responses

std::string
makeResultResponse(uint64_t id, const rt::JobResult &r)
{
    // A result response IS a JobResult object with the envelope fields
    // spliced in front, so clients parse one shape.
    std::string out = "{\"type\":\"result\",\"id\":";
    json::appendU64(out, id);
    const std::string body = r.toJson();
    out += ',';
    out.append(body, 1, body.size() - 1);   // drop the body's '{'
    return out;
}

bool
parseResultResponse(const std::string &text, uint64_t &id,
                    rt::JobResult &out, std::string *err)
{
    Reader::Value v;
    try {
        v = Reader(text).parse();
    } catch (const std::exception &e) {
        setErr(err, e.what());
        return false;
    }
    if (v.kind != Reader::Value::Kind::Obj ||
        v.strOr("type") != "result") {
        setErr(err, "expected a 'result' response");
        return false;
    }
    if (!rt::JobResult::fromJson(text, out, err))
        return false;
    id = v.u64Or("id", 0);
    return true;
}

// --------------------------------------------------------------- client

bool
Client::connect(const std::string &host, uint16_t port, std::string *err)
{
    if (fd_ >= 0) {
        setErr(err, "already connected");
        return false;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        setErr(err, std::string("socket: ") + std::strerror(errno));
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        setErr(err, "bad address '" + host + "' (IPv4 dotted quad only)");
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        setErr(err, std::string("connect: ") + std::strerror(errno));
        ::close(fd);
        return false;
    }
    // One small request frame per round trip: don't let Nagle batch it.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    fd_ = fd;
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::roundTrip(const std::string &request, std::string &response,
                  std::string *err)
{
    if (fd_ < 0) {
        setErr(err, "not connected");
        return false;
    }
    if (!writeFrame(fd_, request)) {
        setErr(err, "send failed");
        return false;
    }
    switch (readFrame(fd_, response)) {
    case FrameStatus::Ok:
        return true;
    case FrameStatus::Eof:
        setErr(err, "server closed the connection");
        return false;
    default:
        setErr(err, "receive failed");
        return false;
    }
}

bool
Client::run(const rt::JobSpec &job, rt::JobResult &res, std::string *err)
{
    std::string response;
    const uint64_t id = nextId_++;
    if (!roundTrip(makeRunRequest(id, job), response, err))
        return false;
    uint64_t gotId = 0;
    if (!parseResultResponse(response, gotId, res, err))
        return false;
    if (gotId != id) {
        setErr(err, "response id mismatch");
        return false;
    }
    return true;
}

bool
Client::stats(std::string &json, std::string *err)
{
    return roundTrip(makeStatsRequest(), json, err);
}

bool
Client::metrics(std::string &text, std::string *err)
{
    return roundTrip(makeMetricsRequest(), text, err);
}

bool
Client::ping(std::string *err)
{
    std::string response;
    return roundTrip(makePingRequest(), response, err);
}

bool
Client::shutdown(std::string *err)
{
    std::string response;
    return roundTrip(makeShutdownRequest(), response, err);
}

} // namespace tango::serve
