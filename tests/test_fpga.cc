/**
 * @file
 * PynQ FPGA model tests: monotonicity in work, BRAM partitioning, the
 * Fig 6 energy relationship against the TX1 simulation.
 */

#include <gtest/gtest.h>

#include "fpga/pynq.hh"
#include "nn/models/models.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

namespace tango::fpga {
namespace {

TEST(Pynq, TimeScalesWithWork)
{
    const nn::Network cifar = nn::models::buildCifarNet();
    const nn::Network alex = nn::models::buildAlexNet();
    const FpgaRun rc = runOnPynq(cifar);
    const FpgaRun ra = runOnPynq(alex);
    EXPECT_GT(ra.totalTimeSec, rc.totalTimeSec);
    // AlexNet has ~150x the MACs of CifarNet; compute time should scale.
    double convComputeA = 0.0, convComputeC = 0.0;
    for (const auto &l : ra.layers)
        convComputeA += l.computeSec;
    for (const auto &l : rc.layers)
        convComputeC += l.computeSec;
    EXPECT_GT(convComputeA / convComputeC, 50.0);
}

TEST(Pynq, SubKernelsFollowBram)
{
    const nn::Network alex = nn::models::buildAlexNet();
    const FpgaRun r = runOnPynq(alex);
    // AlexNet's big FC layers exceed 630KB BRAM many times over.
    bool fcPartitioned = false;
    for (const auto &l : r.layers) {
        if (l.name == "fc6") {
            EXPECT_GT(l.subKernels, 100u);   // ~150MB / 630KB
            fcPartitioned = true;
        }
    }
    EXPECT_TRUE(fcPartitioned);
}

TEST(Pynq, EnergyIsPowerTimesTime)
{
    const nn::Network net = nn::models::buildCifarNet();
    const PynqConfig cfg;
    const FpgaRun r = runOnPynq(net, cfg);
    EXPECT_NEAR(r.totalEnergyJ, r.totalTimeSec * cfg.boardPowerW,
                r.totalEnergyJ * 1e-9);
    EXPECT_EQ(r.peakPowerW, cfg.boardPowerW);
}

TEST(Pynq, LayersExcludeZeroWork)
{
    const nn::Network sq = nn::models::buildSqueezeNet();
    const FpgaRun r = runOnPynq(sq);
    for (const auto &l : r.layers) {
        EXPECT_GT(l.totalSec(), 0.0) << l.name;
    }
}

TEST(Fig6Shape, Tx1FasterButHungrier)
{
    // The paper's Fig 6 relationship: TX1 runs faster, burns more peak
    // power, and ends up with MORE energy than PynQ.
    for (const char *name : {"cifarnet", "squeezenet"}) {
        sim::Gpu gpu(sim::maxwellTX1());
        const rt::NetRun g =
            rt::runNetworkByName(gpu, name, rt::RunPolicy::named("bench"));
        const FpgaRun f = runOnPynq(nn::models::buildCnn(name));

        EXPECT_LT(g.totalTimeSec, f.totalTimeSec) << name;   // GPU faster
        EXPECT_GT(g.peakPowerW, 1.5 * f.peakPowerW) << name; // more power
        const double gpuEnergy = g.peakPowerW * g.totalTimeSec;
        const double fpgaEnergy = f.peakPowerW * f.totalTimeSec;
        EXPECT_GT(gpuEnergy, fpgaEnergy) << name;            // more energy
        EXPECT_LT(gpuEnergy, 20.0 * fpgaEnergy) << name;     // same ballpark
    }
}

TEST(Pynq, ConfigKnobsMatter)
{
    const nn::Network net = nn::models::buildCifarNet();
    PynqConfig fast;
    fast.dspSlices = 2000;
    fast.ddrBytesPerSec = 10e9;
    fast.kernelLoadSec = 0.0;
    const FpgaRun slow = runOnPynq(net);
    const FpgaRun quick = runOnPynq(net, fast);
    EXPECT_LT(quick.totalTimeSec, slow.totalTimeSec);
}

} // namespace
} // namespace tango::fpga
