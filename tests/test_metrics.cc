/**
 * @file
 * Unit tests for tango::metrics: instrument semantics, the fixed log2
 * bucket layout, concurrent-update exactness, snapshot-merge
 * associativity, percentile bound honesty, the Prometheus round trip
 * through metrics::Scrape, registry interning, and the JSON dumper.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "metrics/metrics.hh"
#include "metrics/scrape.hh"

namespace tango::metrics {
namespace {

TEST(Counter, IncrementAndValue)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, MovesBothWays)
{
    Gauge g;
    g.add(5);
    g.sub(8);
    EXPECT_EQ(g.value(), -3);
    g.set(7);
    EXPECT_EQ(g.value(), 7);
}

// ------------------------------------------------------------------ buckets

TEST(Buckets, SmallValuesAreExact)
{
    // Group 0: one bucket per value 0..7.
    for (uint64_t v = 0; v < Buckets::kSub; v++) {
        const unsigned idx = Buckets::index(v);
        EXPECT_EQ(idx, v);
        EXPECT_EQ(Buckets::lower(idx), v);
        EXPECT_EQ(Buckets::upper(idx), v);
    }
}

TEST(Buckets, EveryValueFallsInsideItsBucket)
{
    std::mt19937_64 rng(7);
    for (int i = 0; i < 100000; i++) {
        // Log-uniform draw so every octave gets hit.
        const unsigned shift = unsigned(rng() % 60);
        const uint64_t v = rng() >> shift;
        const unsigned idx = Buckets::index(v);
        ASSERT_LT(idx, Buckets::kCount);
        if (idx < Buckets::kCount - 1) {
            EXPECT_LE(Buckets::lower(idx), v);
            EXPECT_GE(Buckets::upper(idx), v);
        } else {
            EXPECT_GE(v, Buckets::lower(idx));   // clamp bucket
        }
    }
}

TEST(Buckets, BoundsAreContiguousAndMonotonic)
{
    for (unsigned idx = 0; idx + 1 < Buckets::kCount; idx++) {
        EXPECT_EQ(Buckets::upper(idx) + 1, Buckets::lower(idx + 1))
            << "gap after bucket " << idx;
    }
}

TEST(Buckets, RelativeErrorBound)
{
    // upper/lower ≤ 1 + 1/8 for every bucket past group 0: the 12.5%
    // resolution promise in metrics.hh.
    for (unsigned idx = Buckets::kSub; idx < Buckets::kCount; idx++) {
        const double lo = double(Buckets::lower(idx));
        const double hi = double(Buckets::upper(idx));
        EXPECT_LE(hi / lo, 1.0 + 1.0 / Buckets::kSub);
    }
}

// ---------------------------------------------------------------- histogram

TEST(Histogram, CountAndSum)
{
    Histogram h;
    h.observe(3);
    h.observe(100);
    h.observe(100000);
    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count(), 3u);
    EXPECT_EQ(s.sum, 100103u);
}

TEST(Histogram, ConcurrentObservationsAreExact)
{
    Histogram h;
    Counter c;
    constexpr int kThreads = 8;
    constexpr uint64_t kPer = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
            for (uint64_t i = 0; i < kPer; i++) {
                h.observe(uint64_t(t) * 1000 + i % 977);
                c.inc();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kPer);
    EXPECT_EQ(h.snapshot().count(), kThreads * kPer);
}

HistogramSnapshot
randomSnapshot(std::mt19937_64 &rng, int observations)
{
    Histogram h;
    for (int i = 0; i < observations; i++)
        h.observe(rng() % 1000000);
    return h.snapshot();
}

TEST(Histogram, MergeIsAssociativeAndExact)
{
    std::mt19937_64 rng(11);
    const HistogramSnapshot a = randomSnapshot(rng, 500);
    const HistogramSnapshot b = randomSnapshot(rng, 300);
    const HistogramSnapshot c = randomSnapshot(rng, 700);

    HistogramSnapshot ab = a;
    ab.merge(b);
    HistogramSnapshot ab_c = ab;
    ab_c.merge(c);

    HistogramSnapshot bc = b;
    bc.merge(c);
    HistogramSnapshot a_bc = a;
    a_bc.merge(bc);

    EXPECT_EQ(ab_c.buckets, a_bc.buckets);
    EXPECT_EQ(ab_c.sum, a_bc.sum);
    EXPECT_EQ(ab_c.count(), a.count() + b.count() + c.count());
    EXPECT_EQ(ab_c.sum, a.sum + b.sum + c.sum);

    // Merging into a default-constructed snapshot is the identity.
    HistogramSnapshot empty;
    empty.merge(a);
    EXPECT_EQ(empty.buckets, a.buckets);
}

TEST(Histogram, PercentileBracketsTrueSample)
{
    std::mt19937_64 rng(23);
    Histogram h;
    std::vector<uint64_t> values;
    for (int i = 0; i < 5000; i++) {
        // Mix of magnitudes, like a latency distribution.
        const uint64_t v = (rng() % 10 == 0) ? rng() % 5000000
                                             : rng() % 20000;
        values.push_back(v);
        h.observe(v);
    }
    std::sort(values.begin(), values.end());
    const HistogramSnapshot s = h.snapshot();
    for (double p : {0.01, 0.25, 0.50, 0.90, 0.99, 1.0}) {
        // Same rank convention as percentileBucket: ⌈p·n⌉, 1-based.
        size_t rank = size_t(std::ceil(p * double(values.size())));
        rank = std::max<size_t>(rank, 1);
        const uint64_t truth = values[rank - 1];
        EXPECT_LE(s.percentileLower(p), double(truth)) << "p=" << p;
        EXPECT_GE(s.percentileUpper(p), double(truth)) << "p=" << p;
    }
    EXPECT_EQ(HistogramSnapshot().percentileUpper(0.5), 0.0);
}

// ----------------------------------------------------------------- registry

TEST(Registry, InterningReturnsTheSameInstrument)
{
    Registry r;
    Counter &a = r.counter("t_total", "help", {{"k", "v"}});
    Counter &b = r.counter("t_total", "help", {{"k", "v"}});
    EXPECT_EQ(&a, &b);
    Counter &c = r.counter("t_total", "help", {{"k", "other"}});
    EXPECT_NE(&a, &c);
    // Label order does not matter: interning sorts by key.
    Counter &d = r.counter("t2_total", "h", {{"a", "1"}, {"b", "2"}});
    Counter &e = r.counter("t2_total", "h", {{"b", "2"}, {"a", "1"}});
    EXPECT_EQ(&d, &e);
}

TEST(RegistryDeathTest, KindMismatchPanics)
{
    Registry r;
    r.counter("t_total", "help");
    EXPECT_DEATH((void)r.gauge("t_total", "help"),
                 "different kind|mixes instrument kinds");
}

TEST(Registry, PrometheusRoundTrip)
{
    Registry r;
    r.counter("t_requests_total", "requests", {{"how", "sim"}}).inc(41);
    r.counter("t_requests_total", "requests", {{"how", "mem"}}).inc(1);
    r.gauge("t_depth", "queue depth").set(-3);
    Histogram &h = r.histogram("t_latency_us", "latency");
    std::mt19937_64 rng(5);
    uint64_t sum = 0;
    for (int i = 0; i < 2000; i++) {
        const uint64_t v = rng() % 300000;
        h.observe(v);
        sum += v;
    }

    const std::string text = r.renderPrometheus();
    EXPECT_NE(text.find("# TYPE t_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE t_latency_us histogram"),
              std::string::npos);

    Scrape scrape;
    std::string err;
    ASSERT_TRUE(Scrape::parse(text, scrape, &err)) << err;

    EXPECT_DOUBLE_EQ(scrape.sum("t_requests_total"), 42.0);
    const Sample *sim = scrape.find("t_requests_total", "how", "sim");
    ASSERT_NE(sim, nullptr);
    EXPECT_DOUBLE_EQ(sim->value, 41.0);
    const Sample *depth = scrape.find("t_depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_DOUBLE_EQ(depth->value, -3.0);

    // The reconstructed histogram is bucket-for-bucket identical.
    HistogramSnapshot back;
    ASSERT_TRUE(scrape.histogram("t_latency_us", back));
    const HistogramSnapshot orig = h.snapshot();
    EXPECT_EQ(back.buckets, orig.buckets);
    EXPECT_EQ(back.sum, sum);
    EXPECT_EQ(back.count(), 2000u);
    EXPECT_DOUBLE_EQ(back.percentileUpper(0.99),
                     orig.percentileUpper(0.99));

    // The +Inf bucket is mandatory and equals _count.
    const Sample *inf = scrape.find("t_latency_us_bucket", "le", "+Inf");
    ASSERT_NE(inf, nullptr);
    EXPECT_DOUBLE_EQ(inf->value, 2000.0);
    const Sample *count = scrape.find("t_latency_us_count");
    ASSERT_NE(count, nullptr);
    EXPECT_DOUBLE_EQ(count->value, 2000.0);
}

TEST(Registry, LabelValuesAreEscaped)
{
    Registry r;
    r.counter("t_esc_total", "h", {{"k", "a\"b\\c"}}).inc();
    Scrape scrape;
    std::string err;
    ASSERT_TRUE(Scrape::parse(r.renderPrometheus(), scrape, &err)) << err;
    const Sample *s = scrape.find("t_esc_total", "k", "a\"b\\c");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->value, 1.0);
}

TEST(Registry, JsonRenderParses)
{
    Registry r;
    r.counter("t_total", "h").inc(3);
    // Labeled series ids carry quotes (t_by{k="v"}) that the JSON
    // rendering must escape in the object keys.
    r.counter("t_by", "h", {{"k", "v"}}).inc(7);
    r.histogram("t_us", "h").observe(12);
    json::Reader::Value v;
    ASSERT_NO_THROW(v = json::Reader(r.renderJson()).parse());
    ASSERT_EQ(v.kind, json::Reader::Value::Kind::Obj);
    const json::Reader::Value *counters = v.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->u64Or("t_total", 0), 3u);
    EXPECT_EQ(counters->u64Or("t_by{k=\"v\"}", 0), 7u);
    const json::Reader::Value *hists = v.find("histograms");
    ASSERT_NE(hists, nullptr);
    const json::Reader::Value *h = hists->find("t_us");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->u64Or("count", 0), 1u);
    EXPECT_EQ(h->u64Or("sum", 0), 12u);
}

TEST(Registry, DumperWritesParsableSnapshot)
{
    const std::string path =
        testing::TempDir() + "tango_metrics_dump_test.json";
    std::remove(path.c_str());
    {
        Registry r;
        r.counter("t_total", "h").inc(9);
        r.startDumper(path, 3600 * 1000);   // far period: rely on stop
        r.stopDumper();                     // final write on clean stop
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "no snapshot at " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    json::Reader::Value v;
    ASSERT_NO_THROW(v = json::Reader(ss.str()).parse());
    const json::Reader::Value *counters = v.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->u64Or("t_total", 0), 9u);
    std::remove(path.c_str());
}

} // namespace
} // namespace tango::metrics
