/**
 * @file
 * ImageNet-style classification with the big CNNs: run AlexNet and
 * SqueezeNet on a synthetic "cat image", reporting the top-5 classes
 * (from the CPU reference forward pass) alongside the simulated GPU's
 * per-layer timing profile (sampled simulation).
 *
 * AlexNet demonstrates per-layer weight files too: the model's synthetic
 * pre-trained weights are saved to ./weights and reloaded, mirroring how
 * the original suite ships per-layer weight files.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "nn/models/models.hh"
#include "nn/weights.hh"
#include "runtime/engine.hh"
#include "runtime/runtime.hh"
#include "sim/gpu.hh"

namespace {

using namespace tango;

void
classify(const std::string &name)
{
    nn::Network net = nn::models::buildCnn(name);
    nn::initWeights(net);

    if (name == "alexnet") {
        const int written = nn::saveWeightFiles(net, "weights");
        nn::Network reload = nn::models::buildCnn(name);
        const int read = nn::loadWeightFiles(reload, "weights");
        std::printf("%s: wrote %d per-layer weight files, reloaded %d\n",
                    name.c_str(), written, read);
        net = std::move(reload);
    }

    const nn::Tensor cat =
        nn::models::makeInputImage(net.inC, net.inH, net.inW, /*seed=*/7);

    // Reference forward pass for the actual classification result.
    const nn::Tensor out = net.forward(cat);
    std::vector<uint32_t> order(out.size());
    for (uint32_t i = 0; i < order.size(); i++)
        order[i] = i;
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](uint32_t a, uint32_t b) {
                          return out[a] > out[b];
                      });
    std::printf("%s top-5 classes (of %u):", name.c_str(),
                static_cast<unsigned>(out.size()));
    for (int i = 0; i < 5; i++)
        std::printf(" #%u(%.3g)", order[i], out[order[i]]);
    std::printf("\n");

    // Sampled timing simulation for the per-layer profile (prefetched
    // on the engine at program start, so it is already done or in
    // flight by the time we get here).
    const rt::NetRun &run = rt::Engine::global().run(rt::RunKey{name});

    Table t(name + ": simulated per-layer profile (top 8 by time)");
    t.header({"layer", "type", "time (us)", "share"});
    std::vector<const rt::LayerRun *> byTime;
    for (const auto &l : run.layers)
        byTime.push_back(&l);
    std::sort(byTime.begin(), byTime.end(),
              [](const rt::LayerRun *a, const rt::LayerRun *b) {
                  return a->timeSec() > b->timeSec();
              });
    for (size_t i = 0; i < byTime.size() && i < 8; i++) {
        t.row({byTime[i]->name, byTime[i]->figType,
               Table::num(byTime[i]->timeSec() * 1e6, 1),
               Table::pct(byTime[i]->timeSec() / run.totalTimeSec)});
    }
    t.print(std::cout);
    std::printf("%s: %.2f ms simulated, %.1f W peak, %llu KB device "
                "memory\n\n",
                name.c_str(), run.totalTimeSec * 1e3, run.peakPowerW,
                static_cast<unsigned long long>(run.deviceBytes / 1024));
}

} // namespace

int
main()
{
    setVerbose(false);
    // Kick off both simulations before the (serial) CPU reference
    // forward passes; the engine overlaps them with the printing.
    rt::Engine::global().prefetch({rt::RunKey{"alexnet"},
                                   rt::RunKey{"squeezenet"}});
    classify("alexnet");
    classify("squeezenet");
    std::printf("imagenet_classify: OK\n");
    return 0;
}
